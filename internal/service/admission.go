package service

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/wire"
)

// admission is the service's fair, deadline-aware scheduler. It replaces the
// earlier flat semaphore with per-tenant weighted queues dispatched by
// deficit round robin, while keeping the three load-shedding rules that make
// overload degrade into typed refusals instead of an unbounded queue of
// doomed queries:
//
//   - The wait queue is bounded: once maxQueued queries are already waiting
//     for a slot (across all tenants), further submissions are shed
//     immediately with wire.RejectOverloaded and a retry-after hint scaled by
//     the queue depth.
//   - Each queued query's wait is bounded by a queue-time budget derived from
//     its own deadline: a query may spend at most queueFraction of its
//     remaining wall-clock budget waiting for admission (capped by the
//     configured absolute maximum). A query whose budget elapses is shed as
//     overloaded — it still had time to run elsewhere, which burning its
//     whole deadline in the queue would have destroyed.
//   - Once the controller drains (graceful shutdown), every waiter and every
//     later submission is shed with wire.RejectDraining; running queries keep
//     their slots until they finish.
//
// Fairness: every query names a tenant (empty means DefaultTenant). Each
// tenant has a strictly FIFO waiter queue; free slots are dealt to the queues
// by deficit round robin — per rotation visit a tenant's deficit grows by its
// configured weight and each dispatched query spends one unit — so a tenant
// with weight 3 drains three queries for every one of a weight-1 tenant under
// contention, no tenant can starve another, and a lone tenant still gets the
// whole machine. A per-tenant quota (max running) additionally caps how many
// slots one tenant may hold regardless of queue state.
//
// Shed queries never held a slot and never executed, so the typed errors are
// safe to retry idempotently.
type admission struct {
	maxConcurrent int
	maxQueued     int
	maxWait       time.Duration // absolute queue-wait cap; <= 0 means none

	mu       sync.Mutex
	running  int
	queued   int // waiters across every tenant queue
	tenants  map[string]*tenantQueue
	order    []*tenantQueue // stable rotation order (creation order)
	rrIdx    int            // next rotation position
	policies map[string]TenantPolicy
	drainCh  chan struct{} // closed on drain
	drained  bool

	admitted      atomic.Int64
	shedOverload  atomic.Int64
	shedDeadline  atomic.Int64 // subset of overload sheds caused by the queue-time budget
	shedDraining  atomic.Int64
	waits         waitHistogram
	queuedPeak    atomic.Int64
	waitMaxNanos  atomic.Int64
	retryAfterCap time.Duration
}

// DefaultTenant is the accounting principal of queries that name none.
const DefaultTenant = "default"

// TenantPolicy configures one tenant's share of the service.
type TenantPolicy struct {
	// Weight is the tenant's relative share under contention (deficit
	// round-robin quantum). Values < 1 select 1.
	Weight int
	// MaxConcurrent caps how many slots the tenant may hold at once.
	// 0 means no per-tenant cap (the global limit still applies).
	MaxConcurrent int
}

func (p TenantPolicy) weight() int {
	if p.Weight < 1 {
		return 1
	}
	return p.Weight
}

// tenantQueue is one tenant's scheduler state. waiters is strictly FIFO:
// arrivals append at the tail, dispatch pops the head — so two queries of one
// tenant are always granted in submission order, however the rotation
// interleaves tenants.
type tenantQueue struct {
	name    string
	weight  int
	quota   int // max running; 0 = no cap
	deficit int
	waiters []*waiter
	running int

	admittedTotal int64
	shedTotal     int64
}

// waiter is one query waiting for a slot. grant is buffered so dispatch never
// blocks; granted is owned by the admission mutex and disambiguates the race
// between a grant and the waiter abandoning (cancel, timeout, drain).
type waiter struct {
	tq      *tenantQueue
	grant   chan struct{}
	granted bool
}

// queueFraction is the share of a query's remaining deadline it may spend
// waiting for admission before it is shed.
const queueFraction = 0.5

// Defaults for the admission controller's bounds.
const (
	// DefaultMaxQueued bounds how many queries may wait for a slot.
	DefaultMaxQueued = 64
	// defaultRetryAfterBase scales the retry-after hint by queue depth.
	defaultRetryAfterBase = 25 * time.Millisecond
	// defaultRetryAfterCap bounds the retry-after hint.
	defaultRetryAfterCap = 5 * time.Second
)

func newAdmission(maxConcurrent, maxQueued int, maxWait time.Duration, policies map[string]TenantPolicy) *admission {
	if maxQueued < 1 {
		maxQueued = DefaultMaxQueued
	}
	return &admission{
		maxConcurrent: maxConcurrent,
		maxQueued:     maxQueued,
		maxWait:       maxWait,
		tenants:       make(map[string]*tenantQueue),
		policies:      policies,
		drainCh:       make(chan struct{}),
		retryAfterCap: defaultRetryAfterCap,
	}
}

// tenantFor returns (creating on first use) the named tenant's queue. Tenants
// are never removed: the set is bounded by the distinct principals the
// deployment serves, and keeping them preserves rotation stability and
// accumulated stats.
func (a *admission) tenantFor(name string) *tenantQueue {
	if name == "" {
		name = DefaultTenant
	}
	if tq, ok := a.tenants[name]; ok {
		return tq
	}
	pol := a.policies[name]
	tq := &tenantQueue{name: name, weight: pol.weight(), quota: pol.MaxConcurrent}
	a.tenants[name] = tq
	a.order = append(a.order, tq)
	return tq
}

// retryAfter estimates how long a shed submitter should back off: proportional
// to the queue pressure at shed time, bounded by the cap.
func (a *admission) retryAfter(queued int) time.Duration {
	d := defaultRetryAfterBase * time.Duration(queued+1)
	if d > a.retryAfterCap {
		d = a.retryAfterCap
	}
	return d
}

// eligible reports whether the tenant has a dispatchable waiter.
func (tq *tenantQueue) eligible() bool {
	return len(tq.waiters) > 0 && (tq.quota <= 0 || tq.running < tq.quota)
}

// nextWaiter picks the next waiter by deficit round robin. Caller holds a.mu.
func (a *admission) nextWaiter() *waiter {
	n := len(a.order)
	if n == 0 {
		return nil
	}
	// Two full rotations suffice: the first replenishes every eligible
	// tenant's deficit at least once, so the second must find a dispatch if
	// any tenant is eligible at all.
	for steps := 0; steps < 2*n; steps++ {
		tq := a.order[a.rrIdx%n]
		if !tq.eligible() {
			// An empty or capped queue forfeits its accumulated share: deficit
			// must not be hoarded across idle periods, or a returning tenant
			// would burst past its weight.
			tq.deficit = 0
			a.rrIdx++
			continue
		}
		if tq.deficit < 1 {
			tq.deficit += tq.weight
		}
		tq.deficit--
		w := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		a.queued--
		if tq.deficit < 1 {
			a.rrIdx++ // share spent; next tenant's turn
		}
		return w
	}
	return nil
}

// dispatch grants free slots to waiters in DRR order. Caller holds a.mu.
func (a *admission) dispatch() {
	for a.running < a.maxConcurrent {
		w := a.nextWaiter()
		if w == nil {
			return
		}
		a.running++
		w.tq.running++
		w.granted = true
		w.grant <- struct{}{}
	}
}

// releaseSlot returns a slot and redistributes it. Caller holds a.mu.
func (a *admission) releaseSlot(tq *tenantQueue) {
	a.running--
	tq.running--
	a.dispatch()
}

// abandon removes a waiter that is giving up (cancel, timeout, drain). If a
// grant raced in before the waiter could be removed, the slot it was granted
// is released again. Caller holds a.mu.
func (a *admission) abandon(w *waiter) {
	if w.granted {
		a.releaseSlot(w.tq)
		return
	}
	for i, q := range w.tq.waiters {
		if q == w {
			w.tq.waiters = append(w.tq.waiters[:i], w.tq.waiters[i+1:]...)
			a.queued--
			break
		}
	}
}

// acquire obtains an execution slot for the tenant's query, waiting within
// the query's queue-time budget. On success it returns the release function
// and the time spent queued. Shed and cancelled queries return a typed error
// and no slot.
func (a *admission) acquire(ctx context.Context, tenant string) (release func(), wait time.Duration, err error) {
	start := time.Now()

	a.mu.Lock()
	if a.drained {
		a.mu.Unlock()
		a.shedDraining.Add(1)
		return nil, 0, &wire.RejectError{Reason: wire.RejectDraining}
	}
	tq := a.tenantFor(tenant)

	// Fast path: with nobody queued, a free slot under quota admits
	// immediately — no rotation, no histogramable wait.
	if a.queued == 0 && a.running < a.maxConcurrent && (tq.quota <= 0 || tq.running < tq.quota) {
		a.running++
		tq.running++
		tq.admittedTotal++
		a.mu.Unlock()
		a.admitted.Add(1)
		a.waits.observe(0)
		return func() { a.mu.Lock(); a.releaseSlot(tq); a.mu.Unlock() }, 0, nil
	}

	if a.queued >= a.maxQueued {
		hint := a.retryAfter(a.queued)
		tq.shedTotal++
		a.mu.Unlock()
		a.shedOverload.Add(1)
		return nil, 0, &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
	}

	// The queue-time budget: a deadline query may burn at most queueFraction
	// of its remaining time waiting, so a shed still leaves it time to run
	// elsewhere; the absolute cap (when configured) bounds deadline-free
	// queries too.
	budget := a.maxWait
	if dl, ok := ctx.Deadline(); ok {
		b := time.Duration(float64(time.Until(dl)) * queueFraction)
		if b <= 0 {
			hint := a.retryAfter(a.queued)
			tq.shedTotal++
			a.mu.Unlock()
			a.shedOverload.Add(1)
			a.shedDeadline.Add(1)
			return nil, 0, &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
		}
		if budget <= 0 || b < budget {
			budget = b
		}
	}

	w := &waiter{tq: tq, grant: make(chan struct{}, 1)}
	tq.waiters = append(tq.waiters, w)
	a.queued++
	if q := int64(a.queued); q > a.queuedPeak.Load() {
		a.queuedPeak.Store(q)
	}
	drainCh := a.drainCh
	// A slot may have freed between the fast-path check and the enqueue.
	a.dispatch()
	a.mu.Unlock()

	var timeout <-chan time.Time
	if budget > 0 {
		t := time.NewTimer(budget)
		defer t.Stop()
		timeout = t.C
	}

	granted := func() (func(), time.Duration, error) {
		wait = time.Since(start)
		a.mu.Lock()
		tq.admittedTotal++
		a.mu.Unlock()
		a.admitted.Add(1)
		a.waits.observe(wait)
		for {
			max := a.waitMaxNanos.Load()
			if int64(wait) <= max || a.waitMaxNanos.CompareAndSwap(max, int64(wait)) {
				break
			}
		}
		return func() { a.mu.Lock(); a.releaseSlot(tq); a.mu.Unlock() }, wait, nil
	}

	select {
	case <-w.grant:
		return granted()
	case <-ctx.Done():
		a.mu.Lock()
		a.abandon(w)
		a.mu.Unlock()
		return nil, time.Since(start), ctx.Err()
	case <-timeout:
		a.mu.Lock()
		// The grant may have raced the timer; a granted waiter keeps its slot.
		if w.granted {
			a.mu.Unlock()
			return granted()
		}
		a.abandon(w)
		hint := a.retryAfter(a.queued)
		tq.shedTotal++
		a.mu.Unlock()
		a.shedOverload.Add(1)
		a.shedDeadline.Add(1)
		return nil, time.Since(start), &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
	case <-drainCh:
		a.mu.Lock()
		if w.granted {
			a.mu.Unlock()
			return granted()
		}
		a.abandon(w)
		tq.shedTotal++
		a.mu.Unlock()
		a.shedDraining.Add(1)
		return nil, time.Since(start), &wire.RejectError{Reason: wire.RejectDraining}
	}
}

// drain sheds every queued query and refuses later submissions; running
// queries are unaffected. Idempotent.
func (a *admission) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.drained {
		a.drained = true
		close(a.drainCh)
	}
}

// waitHistogram is a lock-free power-of-two histogram of admission waits,
// from which quantiles are estimated without retaining per-query samples.
// Bucket i counts waits in [2^(i-1), 2^i) milliseconds; bucket 0 is < 1ms,
// the last bucket is the overflow.
type waitHistogram struct {
	buckets [17]atomic.Int64 // <1ms .. <32.8s, then overflow
}

func (h *waitHistogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for ms > 0 && i < len(h.buckets)-1 {
		ms >>= 1
		i++
	}
	h.buckets[i].Add(1)
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses it. Zero when nothing was
// observed.
func (h *waitHistogram) quantile(q float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(1<<uint(i)) * time.Millisecond
		}
	}
	return time.Duration(1<<uint(len(h.buckets)-1)) * time.Millisecond
}

// TenantAdmissionStats is one tenant's slice of the scheduler.
type TenantAdmissionStats struct {
	// Weight is the tenant's DRR share; Quota its running cap (0 = none).
	Weight int
	Quota  int
	// Running and Queued are the tenant's current slot and queue occupancy.
	Running int
	Queued  int
	// Admitted and Shed count the tenant's granted and refused queries.
	Admitted int64
	Shed     int64
}

// AdmissionStats is a point-in-time snapshot of the admission controller.
type AdmissionStats struct {
	// Admitted counts queries granted an execution slot.
	Admitted int64
	// ShedOverload counts queries shed with wire.RejectOverloaded (queue
	// full, or queue-time budget elapsed).
	ShedOverload int64
	// ShedDeadline is the subset of ShedOverload shed because the queue-time
	// budget derived from their deadline elapsed.
	ShedDeadline int64
	// ShedDraining counts queries shed because the service was draining.
	ShedDraining int64
	// Queued is the current wait-queue depth; QueuedPeak its high-water mark.
	Queued     int
	QueuedPeak int64
	// WaitP50/WaitP99 are bucketed estimates of the admission-wait quantiles.
	WaitP50 time.Duration
	WaitP99 time.Duration
	// WaitMax is the longest admission wait granted so far.
	WaitMax time.Duration
	// Tenants snapshots every tenant that has submitted at least one query,
	// keyed by tenant name.
	Tenants map[string]TenantAdmissionStats
}

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	queued := a.queued
	tenants := make(map[string]TenantAdmissionStats, len(a.tenants))
	for name, tq := range a.tenants {
		tenants[name] = TenantAdmissionStats{
			Weight:   tq.weight,
			Quota:    tq.quota,
			Running:  tq.running,
			Queued:   len(tq.waiters),
			Admitted: tq.admittedTotal,
			Shed:     tq.shedTotal,
		}
	}
	a.mu.Unlock()
	return AdmissionStats{
		Admitted:     a.admitted.Load(),
		ShedOverload: a.shedOverload.Load(),
		ShedDeadline: a.shedDeadline.Load(),
		ShedDraining: a.shedDraining.Load(),
		Queued:       queued,
		QueuedPeak:   a.queuedPeak.Load(),
		WaitP50:      a.waits.quantile(0.50),
		WaitP99:      a.waits.quantile(0.99),
		WaitMax:      time.Duration(a.waitMaxNanos.Load()),
		Tenants:      tenants,
	}
}

// TenantNames returns the tenants seen so far, sorted, for stable logging.
func (s AdmissionStats) TenantNames() []string {
	names := make([]string, 0, len(s.Tenants))
	for n := range s.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
