package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/wire"
)

// admission is the service's deadline-aware admission controller. It replaces
// a flat semaphore with three load-shedding rules, so overload degrades into
// typed refusals instead of an unbounded queue of doomed queries:
//
//   - The wait queue is bounded: once maxQueued queries are already waiting
//     for a slot, further submissions are shed immediately with
//     wire.RejectOverloaded and a retry-after hint scaled by the queue depth.
//   - Each queued query's wait is bounded by a queue-time budget derived from
//     its own deadline: a query may spend at most queueFraction of its
//     remaining wall-clock budget waiting for admission (capped by the
//     configured absolute maximum). A query whose budget elapses is shed as
//     overloaded — it still had time to run elsewhere, which burning its whole
//     deadline in the queue would have destroyed.
//   - Once the controller drains (graceful shutdown), every waiter and every
//     later submission is shed with wire.RejectDraining; running queries keep
//     their slots until they finish.
//
// Shed queries never held a slot and never executed, so the typed errors are
// safe to retry idempotently.
type admission struct {
	slots     chan struct{}
	maxQueued int
	maxWait   time.Duration // absolute queue-wait cap; <= 0 means none

	mu      sync.Mutex
	queued  int
	drainCh chan struct{} // closed on drain
	drained bool

	admitted      atomic.Int64
	shedOverload  atomic.Int64
	shedDeadline  atomic.Int64 // subset of overload sheds caused by the queue-time budget
	shedDraining  atomic.Int64
	waits         waitHistogram
	queuedPeak    atomic.Int64
	waitMaxNanos  atomic.Int64
	retryAfterCap time.Duration
}

// queueFraction is the share of a query's remaining deadline it may spend
// waiting for admission before it is shed.
const queueFraction = 0.5

// Defaults for the admission controller's bounds.
const (
	// DefaultMaxQueued bounds how many queries may wait for a slot.
	DefaultMaxQueued = 64
	// defaultRetryAfterBase scales the retry-after hint by queue depth.
	defaultRetryAfterBase = 25 * time.Millisecond
	// defaultRetryAfterCap bounds the retry-after hint.
	defaultRetryAfterCap = 5 * time.Second
)

func newAdmission(maxConcurrent, maxQueued int, maxWait time.Duration) *admission {
	if maxQueued < 1 {
		maxQueued = DefaultMaxQueued
	}
	return &admission{
		slots:         make(chan struct{}, maxConcurrent),
		maxQueued:     maxQueued,
		maxWait:       maxWait,
		drainCh:       make(chan struct{}),
		retryAfterCap: defaultRetryAfterCap,
	}
}

// retryAfter estimates how long a shed submitter should back off: proportional
// to the queue pressure at shed time, bounded by the cap.
func (a *admission) retryAfter(queued int) time.Duration {
	d := defaultRetryAfterBase * time.Duration(queued+1)
	if d > a.retryAfterCap {
		d = a.retryAfterCap
	}
	return d
}

// acquire obtains an execution slot, waiting within the query's queue-time
// budget. On success it returns the release function and the time spent
// queued. Shed and cancelled queries return a typed error and no slot.
func (a *admission) acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	start := time.Now()

	// Fast path: a free slot admits immediately, bypassing the queue bound.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.waits.observe(0)
		return func() { <-a.slots }, 0, nil
	default:
	}

	a.mu.Lock()
	if a.drained {
		a.mu.Unlock()
		a.shedDraining.Add(1)
		return nil, 0, &wire.RejectError{Reason: wire.RejectDraining}
	}
	if a.queued >= a.maxQueued {
		hint := a.retryAfter(a.queued)
		a.mu.Unlock()
		a.shedOverload.Add(1)
		return nil, 0, &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
	}
	a.queued++
	if q := int64(a.queued); q > a.queuedPeak.Load() {
		a.queuedPeak.Store(q)
	}
	drainCh := a.drainCh
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()

	// The queue-time budget: a deadline query may burn at most queueFraction
	// of its remaining time waiting, so a shed still leaves it time to run
	// elsewhere; the absolute cap (when configured) bounds deadline-free
	// queries too.
	budget := a.maxWait
	if dl, ok := ctx.Deadline(); ok {
		b := time.Duration(float64(time.Until(dl)) * queueFraction)
		if b <= 0 {
			a.shedOverload.Add(1)
			a.shedDeadline.Add(1)
			a.mu.Lock()
			hint := a.retryAfter(a.queued)
			a.mu.Unlock()
			return nil, 0, &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
		}
		if budget <= 0 || b < budget {
			budget = b
		}
	}
	var timeout <-chan time.Time
	if budget > 0 {
		t := time.NewTimer(budget)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case a.slots <- struct{}{}:
		wait = time.Since(start)
		a.admitted.Add(1)
		a.waits.observe(wait)
		for {
			max := a.waitMaxNanos.Load()
			if int64(wait) <= max || a.waitMaxNanos.CompareAndSwap(max, int64(wait)) {
				break
			}
		}
		return func() { <-a.slots }, wait, nil
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	case <-timeout:
		a.shedOverload.Add(1)
		a.shedDeadline.Add(1)
		a.mu.Lock()
		hint := a.retryAfter(a.queued)
		a.mu.Unlock()
		return nil, time.Since(start), &wire.RejectError{Reason: wire.RejectOverloaded, RetryAfter: hint}
	case <-drainCh:
		a.shedDraining.Add(1)
		return nil, time.Since(start), &wire.RejectError{Reason: wire.RejectDraining}
	}
}

// drain sheds every queued query and refuses later submissions; running
// queries are unaffected. Idempotent.
func (a *admission) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.drained {
		a.drained = true
		close(a.drainCh)
	}
}

// waitHistogram is a lock-free power-of-two histogram of admission waits,
// from which quantiles are estimated without retaining per-query samples.
// Bucket i counts waits in [2^(i-1), 2^i) milliseconds; bucket 0 is < 1ms,
// the last bucket is the overflow.
type waitHistogram struct {
	buckets [17]atomic.Int64 // <1ms .. <32.8s, then overflow
}

func (h *waitHistogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for ms > 0 && i < len(h.buckets)-1 {
		ms >>= 1
		i++
	}
	h.buckets[i].Add(1)
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses it. Zero when nothing was
// observed.
func (h *waitHistogram) quantile(q float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * q)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(1<<uint(i)) * time.Millisecond
		}
	}
	return time.Duration(1<<uint(len(h.buckets)-1)) * time.Millisecond
}

// AdmissionStats is a point-in-time snapshot of the admission controller.
type AdmissionStats struct {
	// Admitted counts queries granted an execution slot.
	Admitted int64
	// ShedOverload counts queries shed with wire.RejectOverloaded (queue
	// full, or queue-time budget elapsed).
	ShedOverload int64
	// ShedDeadline is the subset of ShedOverload shed because the queue-time
	// budget derived from their deadline elapsed.
	ShedDeadline int64
	// ShedDraining counts queries shed because the service was draining.
	ShedDraining int64
	// Queued is the current wait-queue depth; QueuedPeak its high-water mark.
	Queued     int
	QueuedPeak int64
	// WaitP50/WaitP99 are bucketed estimates of the admission-wait quantiles.
	WaitP50 time.Duration
	WaitP99 time.Duration
	// WaitMax is the longest admission wait granted so far.
	WaitMax time.Duration
}

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	queued := a.queued
	a.mu.Unlock()
	return AdmissionStats{
		Admitted:     a.admitted.Load(),
		ShedOverload: a.shedOverload.Load(),
		ShedDeadline: a.shedDeadline.Load(),
		ShedDraining: a.shedDraining.Load(),
		Queued:       queued,
		QueuedPeak:   a.queuedPeak.Load(),
		WaitP50:      a.waits.quantile(0.50),
		WaitP99:      a.waits.quantile(0.99),
		WaitMax:      time.Duration(a.waitMaxNanos.Load()),
	}
}
