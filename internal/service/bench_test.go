package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"csq/internal/catalog"
	"csq/internal/exec"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/storage"
	"csq/internal/types"
)

// benchCatalog builds a small two-table catalog (no client runtime: the
// benchmark exercises the service machinery — admission, planning with the
// shared stats cache, the governed execution loop — not the wire).
func benchCatalog(b *testing.B, rows int) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	events, err := storage.NewHeapTable("events", eventsSchema())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := events.Insert(types.NewTuple(
			types.NewInt(int64(i%17)),
			types.NewInt(int64((i*7)%128)),
			types.NewString(fmt.Sprintf("event-payload-%05d", i)),
			types.NewFloat(float64(i%1000)/3),
		)); err != nil {
			b.Fatal(err)
		}
	}
	if err := cat.AddTable(&catalog.Table{Name: "events", Schema: eventsSchema(), Stats: events.Stats(), Data: events}); err != nil {
		b.Fatal(err)
	}
	dims, err := storage.NewHeapTable("dims", dimsSchema())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := dims.Insert(types.NewTuple(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("dim-%04d", i)))); err != nil {
			b.Fatal(err)
		}
	}
	if err := cat.AddTable(&catalog.Table{Name: "dims", Schema: dimsSchema(), Stats: dims.Stats(), Data: dims}); err != nil {
		b.Fatal(err)
	}
	return cat
}

func benchTree(b *testing.B, cat *catalog.Catalog) logical.Node {
	b.Helper()
	dimsScan, err := logical.NewScanByName(cat, "dims", "")
	if err != nil {
		b.Fatal(err)
	}
	eventsScan, err := logical.NewScanByName(cat, "events", "")
	if err != nil {
		b.Fatal(err)
	}
	join, err := logical.NewJoin(dimsScan, eventsScan, []int{0}, []int{1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	agg, err := logical.NewAggregate(join, []int{3}, []exec.Aggregate{
		{Func: exec.AggCount, Ordinal: -1, Name: "n"},
		{Func: exec.AggSum, Ordinal: 5, Name: "sum_val"},
	})
	if err != nil {
		b.Fatal(err)
	}
	return agg
}

// BenchmarkServiceConcurrent8 pushes 8 concurrent join+aggregate queries
// through the Service per operation: admission, per-query context and
// tracker setup, planning (stats-cache served after the first round), and
// the governed execution loop. The /batch variant is gated by benchrun like
// the execution-engine batch paths.
func BenchmarkServiceConcurrent8(b *testing.B) {
	cat := benchCatalog(b, 512)
	svc := New(cat, Config{MaxConcurrent: 8, Planner: plan.Config{Link: fixedLink()}})
	defer svc.Close()
	tree := benchTree(b, cat)

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for j := 0; j < 8; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := svc.Execute(context.Background(), Request{Tree: tree}); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}

// BenchmarkServiceOverloadShed measures the cost of refusing work: the one
// execution slot and the one queue seat are pinned, so every measured
// submission takes the typed shed path — handle registration, the admission
// controller's queue-full refusal, and the terminal StateShed bookkeeping.
// This is the path a server leans on hardest when it is already saturated,
// so it must stay cheap; the /batch variant is gated by benchrun.
func BenchmarkServiceOverloadShed(b *testing.B) {
	cat := benchCatalog(b, 64)
	svc := New(cat, Config{MaxConcurrent: 1, MaxQueued: 1, Planner: plan.Config{Link: fixedLink()}})
	defer svc.Close()
	tree := benchTree(b, cat)

	// Pin the slot with a query whose sink blocks, then park a second query
	// on the single queue seat.
	started := make(chan struct{})
	hold := make(chan struct{})
	var once sync.Once
	blocker, err := svc.Submit(context.Background(), Request{Tree: tree, OnBatch: func([]types.Tuple) error {
		once.Do(func() { close(started) })
		<-hold
		return nil
	}})
	if err != nil {
		b.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(context.Background(), Request{Tree: tree})
	if err != nil {
		b.Fatal(err)
	}
	for svc.Stats().Admission.Queued < 1 {
		time.Sleep(100 * time.Microsecond)
	}

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := svc.Submit(context.Background(), Request{Tree: tree})
			if err != nil {
				b.Fatal(err)
			}
			if _, werr := q.Wait(); werr == nil {
				b.Fatal("saturated submission was not shed")
			}
		}
	})

	close(hold)
	if _, err := blocker.Wait(); err != nil {
		b.Fatal(err)
	}
	if _, err := queued.Wait(); err != nil {
		b.Fatal(err)
	}
}
