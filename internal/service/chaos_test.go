//go:build chaos

package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	osexec "os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csq/internal/storage"
	"csq/internal/wire"
)

// The service chaos suite runs the overload acceptance scenarios under
// `go test -tags chaos`: a seeded storm of 64 concurrent requesters with
// mixed deadlines against a deliberately undersized server, a drain in the
// middle of that storm repeated across restart cycles, and a kill -9 of a
// process holding retained spill runs followed by the startup sweep. Every
// scenario asserts answered queries stay byte-identical to an uncontended
// reference, failures stay cleanly typed, and goroutine counts return to
// baseline.

const (
	stormRequesters = 64
	stormPerClient  = 3
)

// stormDeadline picks the deadline for requester i, attempt j: every third
// submission runs on a 50ms fuse, the rest get a comfortable 5s. Deterministic
// by ordinal, so the mix is identical on every run and under -count=2.
func stormDeadline(i, j int) int64 {
	if (i+j)%3 == 0 {
		return 50
	}
	return 5000
}

// stormOutcome tallies one requester's submissions.
type stormOutcome struct {
	completed int64
	shed      int64
	deadline  int64
	transport int64
}

// classifyStormErr buckets an error from a storm submission. Only three
// shapes are legitimate: a typed reject (shed), a deadline/cancel burn on an
// admitted short-fuse query, or — when drain is allowed — a transport error
// from the server closing the connection after the flush. Anything else is a
// test failure.
func classifyStormErr(err error, out *stormOutcome, drainOK bool) error {
	var re *wire.RejectError
	if errors.As(err, &re) {
		if wire.Classify(err) != wire.ClassRetryable {
			return fmt.Errorf("typed reject not classified retryable: %v", err)
		}
		if re.Reason == wire.RejectOverloaded && re.RetryAfter <= 0 {
			return fmt.Errorf("overload reject carries no retry-after hint: %v", err)
		}
		atomic.AddInt64(&out.shed, 1)
		return nil
	}
	msg := err.Error()
	if strings.Contains(msg, "context deadline exceeded") || strings.Contains(msg, "context canceled") {
		atomic.AddInt64(&out.deadline, 1)
		return nil
	}
	if drainOK {
		if wire.Classify(err) != wire.ClassFatal ||
			strings.Contains(msg, "closed") || strings.Contains(msg, "EOF") ||
			strings.Contains(msg, "connection reset") || strings.Contains(msg, "broken pipe") {
			atomic.AddInt64(&out.transport, 1)
			return nil
		}
	}
	return fmt.Errorf("untyped failure: %v", err)
}

// stormQuery is the storm's workload: a 16k×16k self-join folded into one
// integer-aggregate row. The cost is all server-side (build + probe while
// holding the execution slot), the answer is one exactly-comparable row —
// so the storm saturates admission rather than the clients' decoders, and
// byte-identity cannot flake on float summation order.
const stormQuery = "heavy(count(*) as n, sum(K) as ksum) :- nums(K, _), nums(K, _)."

// TestChaosOverloadStorm hammers a one-slot, two-seat server with 64
// concurrent requesters submitting 192 queries on mixed deadlines. Every
// answered query must be byte-identical to the uncontended reference, every
// failure must be a typed retryable reject or a deadline burn, the p99
// admission wait must stay within the configured queue budget, and nothing
// may leak.
func TestChaosOverloadStorm(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()

	cat := miniCatalog(t, 16384)
	svc := New(cat, Config{MaxConcurrent: 1, MaxQueued: 2, MaxQueueWait: 250 * time.Millisecond})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Uncontended reference run.
	ref, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := ref.SubmitText(stormQuery, wire.QuerySpec{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := rq.Collect()
	if err != nil {
		t.Fatal(err)
	}
	_ = ref.Close()
	if len(wantRows) != 1 {
		t.Fatalf("reference run returned %d rows, want the single aggregate row", len(wantRows))
	}
	want := encodeRows(t, wantRows)

	var out stormOutcome
	errCh := make(chan error, stormRequesters)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < stormRequesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := Dial(addr)
			if err != nil {
				errCh <- fmt.Errorf("requester %d dial: %w", i, err)
				return
			}
			defer r.Close()
			<-start
			for j := 0; j < stormPerClient; j++ {
				q, err := r.SubmitText(stormQuery, wire.QuerySpec{TimeoutMillis: stormDeadline(i, j)})
				if err != nil {
					if cerr := classifyStormErr(err, &out, false); cerr != nil {
						errCh <- fmt.Errorf("requester %d submit: %w", i, cerr)
						return
					}
					continue
				}
				rows, err := q.Collect()
				if err != nil {
					if cerr := classifyStormErr(err, &out, false); cerr != nil {
						errCh <- fmt.Errorf("requester %d: %w", i, cerr)
						return
					}
					continue
				}
				if !bytes.Equal(encodeRows(t, rows), want) {
					errCh <- fmt.Errorf("requester %d query %d: answered rows differ from reference", i, j)
					return
				}
				atomic.AddInt64(&out.completed, 1)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if out.completed == 0 {
		t.Fatal("storm completed zero queries")
	}
	st := svc.Stats()
	if out.shed == 0 {
		t.Fatalf("a 64-way storm against an undersized server shed nothing — admission control is not engaging (outcome %+v, admission %+v)", out, st.Admission)
	}
	total := out.completed + out.shed + out.deadline
	if total != stormRequesters*stormPerClient {
		t.Fatalf("accounted for %d outcomes, want %d", total, stormRequesters*stormPerClient)
	}
	if st.Admission.ShedOverload+st.Admission.ShedDraining == 0 {
		t.Fatalf("admission stats show no sheds: %+v", st.Admission)
	}
	// MaxQueueWait bounds every admission wait at 250ms; the power-of-two
	// histogram rounds the p99 up to at most the next bucket edge.
	if st.Admission.WaitP99 > 512*time.Millisecond {
		t.Fatalf("admission WaitP99 = %v, want <= 512ms under a 250ms queue budget", st.Admission.WaitP99)
	}
	t.Logf("storm: %d completed, %d shed, %d deadline-burned; admission %+v",
		out.completed, out.shed, out.deadline, st.Admission)

	srv.Close()
	awaitLeakFree(t, baseline)
}

// TestChaosDrainRestartCycles runs three start→storm→drain cycles. Each cycle
// drains the server in the middle of a 16-requester storm: answered queries
// stay byte-identical, failures stay typed (transport errors allowed once the
// drain starts tearing connections down), Shutdown completes within its
// budget, and the goroutine count returns to the pre-cycle baseline every
// time.
func TestChaosDrainRestartCycles(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()
	cat := miniCatalog(t, 512)

	// Reference rows computed once, locally, without a server.
	refSvc := New(cat, Config{MaxConcurrent: 1})
	refRes, err := refSvc.Execute(context.Background(), Request{Tree: numsTree(t, cat)})
	if err != nil {
		t.Fatal(err)
	}
	refSvc.Close()
	want := encodeRows(t, refRes.Rows)

	for cycle := 0; cycle < 3; cycle++ {
		svc := New(cat, Config{MaxConcurrent: 2, MaxQueued: 4, MaxQueueWait: 250 * time.Millisecond})
		srv := NewServer(svc)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan struct{})
		go func() { _ = srv.Serve(ln); close(serveDone) }()
		addr := ln.Addr().String()

		var out stormOutcome
		errCh := make(chan error, 16)
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := Dial(addr)
				if err != nil {
					// The drain can win the race before this requester even
					// connects on later iterations of the loop below — but a
					// first dial should succeed, the listener is up.
					errCh <- fmt.Errorf("requester %d dial: %w", i, err)
					return
				}
				defer r.Close()
				for j := 0; j < 6; j++ {
					q, err := r.Submit(wire.QuerySpec{Table: "nums", TimeoutMillis: 5000})
					if err != nil {
						if cerr := classifyStormErr(err, &out, true); cerr != nil {
							errCh <- fmt.Errorf("requester %d submit: %w", i, cerr)
						}
						return // connection is draining or gone; stop this client
					}
					rows, err := q.Collect()
					if err != nil {
						if cerr := classifyStormErr(err, &out, true); cerr != nil {
							errCh <- fmt.Errorf("requester %d: %w", i, cerr)
							return
						}
						continue
					}
					if !bytes.Equal(encodeRows(t, rows), want) {
						errCh <- fmt.Errorf("requester %d: rows answered during drain cycle differ from reference", i)
						return
					}
					atomic.AddInt64(&out.completed, 1)
				}
			}(i)
		}

		// Let the storm build, then drain mid-flight.
		time.Sleep(30 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("cycle %d: Shutdown returned %v", cycle, err)
		}
		cancel()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			t.Fatalf("cycle %d: Serve did not return after Shutdown", cycle)
		}
		if out.completed == 0 {
			t.Fatalf("cycle %d: no query completed before the drain", cycle)
		}
		t.Logf("cycle %d: %d completed, %d shed, %d canceled, %d transport",
			cycle, out.completed, out.shed, out.deadline, out.transport)
		awaitLeakFree(t, baseline)
	}
}

// spillChildEnv carries the spill root to the re-executed child process.
const spillChildEnv = "CSQ_CHAOS_SPILL_CHILD_ROOT"

// TestChaosSpillChild is the re-exec helper for the kill-and-restart
// scenario, not a test in its own right: it creates a spill namespace owned
// by its own pid, flushes a retained run into it, reports readiness on
// stdout, and blocks until killed.
func TestChaosSpillChild(t *testing.T) {
	root := os.Getenv(spillChildEnv)
	if root == "" {
		t.Skip("re-exec helper; run via TestChaosKillRestartSpillReclaim")
	}
	dir, err := storage.CreateSpillNamespace(root, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.NewRetainedRunWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(bytes.Repeat([]byte("spill"), 2048)); err != nil {
		t.Fatal(err)
	}
	// Finish flushes the run to disk and keeps it linked — exactly the state
	// a crash mid-query leaves behind.
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	fmt.Println("SPILL_CHILD_READY")
	os.Stdout.Sync()
	select {} // hold the namespace until kill -9
}

// TestChaosKillRestartSpillReclaim re-executes the test binary as a child
// that parks retained spill runs in its own namespace, kills it with SIGKILL
// mid-hold, and checks the startup sweep — the same one udfserverd runs —
// reclaims the orphaned directory, byte count and all, while leaving live
// namespaces alone.
func TestChaosKillRestartSpillReclaim(t *testing.T) {
	root := t.TempDir()

	cmd := osexec.Command(os.Args[0], "-test.run=^TestChaosSpillChild$", "-test.v")
	cmd.Env = append(os.Environ(), spillChildEnv+"="+root)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "SPILL_CHILD_READY") {
				ready <- nil
				return
			}
		}
		ready <- fmt.Errorf("child exited before signalling readiness: %v", sc.Err())
	}()
	select {
	case err := <-ready:
		if err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("child never signalled readiness")
	}

	// A namespace owned by this (live) process must survive the sweep.
	liveDir, err := storage.CreateSpillNamespace(root, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: no cleanup path runs, the namespace is orphaned on disk.
	childPid := cmd.Process.Pid
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	removed, reclaimed, err := storage.SweepSpillDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("sweep removed %v, want exactly the dead child's namespace", removed)
	}
	if !strings.Contains(removed[0], fmt.Sprintf("-q%d-", childPid)) {
		t.Fatalf("sweep removed %q, which does not belong to dead pid %d", removed[0], childPid)
	}
	if reclaimed < 5*2048 {
		t.Fatalf("sweep reclaimed %d bytes, want at least the child's %d-byte run", reclaimed, 5*2048)
	}
	if _, err := os.Stat(liveDir); err != nil {
		t.Fatalf("sweep touched the live namespace: %v", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Join(root, entries[0].Name()) != liveDir {
		t.Fatalf("spill root holds %d entries after sweep, want only the live namespace", len(entries))
	}
}
