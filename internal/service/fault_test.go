package service

import (
	"context"
	"strings"
	"testing"

	"csq/internal/catalog"
	"csq/internal/exec"
	"csq/internal/logical"
	"csq/internal/netsim"
	"csq/internal/plan"
	"csq/internal/storage"
	"csq/internal/types"
)

// panicRelation is a storage.Relation whose iterator construction panics,
// standing in for any operator that blows up mid-query.
type panicRelation struct{ schema *types.Schema }

func (p *panicRelation) Name() string          { return "boom" }
func (p *panicRelation) Schema() *types.Schema { return p.schema }
func (p *panicRelation) Iterator() storage.RowIterator {
	panic("injected scan panic")
}

// TestServicePanicIsolation verifies that a panicking operator fails only its
// own query: the panic is converted to that query's error, and the service
// keeps planning and executing subsequent queries normally.
func TestServicePanicIsolation(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()

	schema := types.NewSchema(types.Column{Name: "K", Kind: types.KindInt})
	if err := fx.cat.AddTable(&catalog.Table{
		Name:   "boom",
		Schema: schema,
		Stats:  catalog.TableStats{RowCount: 16, AvgRowSize: 8},
		Data:   &panicRelation{schema: schema},
	}); err != nil {
		t.Fatal(err)
	}

	svc := New(fx.cat, Config{Planner: plan.Config{Link: fixedLink()}})
	defer svc.Close()

	boomScan, err := logical.NewScanByName(fx.cat, "boom", "")
	if err != nil {
		t.Fatal(err)
	}
	q, err := svc.Submit(context.Background(), Request{Tree: boomScan})
	if err != nil {
		t.Fatalf("submit panicking query: %v", err)
	}
	if _, err := q.Wait(); err == nil {
		t.Fatal("panicking query reported success")
	} else if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking query error = %v, want a converted panic", err)
	}

	// The process survived and the service still serves queries.
	res, err := svc.Execute(context.Background(), Request{Tree: joinAggTree(t, fx.cat, 2)})
	if err != nil {
		t.Fatalf("query after a panic: %v", err)
	}
	if res.RowCount == 0 {
		t.Fatal("query after a panic returned no rows")
	}
}

// TestServiceQueryStatsRecordFaults runs a UDF query over a link that kills
// one pooled session mid-stream and checks the lifecycle stats surface the
// planned pool sizes and the fault-tolerance counters.
func TestServiceQueryStatsRecordFaults(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{Planner: plan.Config{Link: fixedLink()}})
	defer svc.Close()

	tree := udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, nil, nil, nil)
	want := encodeRows(t, referenceRun(t, fx, tree))

	// In-process link so the fault script can kill exactly one pooled session
	// (ordinal 1) and let its redial succeed.
	link := exec.NewInProcessLink(fx.runtime, netsim.Unlimited())
	link.Faults = netsim.NewFaultScript(1).Set(1, netsim.FaultConfig{DropAfterBytes: 1500})
	res, err := svc.Execute(context.Background(), Request{Tree: tree, Link: link})
	if err != nil {
		t.Fatalf("faulty-link query: %v", err)
	}
	if got := encodeRows(t, res.Rows); string(got) != string(want) {
		t.Fatal("results after mid-query session loss differ from the fault-free run")
	}
	st := res.Stats
	if len(st.SessionsPlanned) != len(st.Strategies) {
		t.Errorf("SessionsPlanned %v not aligned with Strategies %v", st.SessionsPlanned, st.Strategies)
	}
	if st.Faults.Failovers < 1 {
		t.Errorf("stats faults = %+v, want at least one failover recorded", st.Faults)
	}
}
