package service

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"csq/internal/exec"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/storage"
	"csq/internal/types"
	"csq/internal/wire"
)

// eventsHeap digs the events heap table back out of the fixture's catalog so
// invalidation tests can write to it.
func eventsHeap(t testing.TB, fx *serviceFixture) *storage.HeapTable {
	t.Helper()
	tbl, err := fx.cat.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	heap, ok := tbl.Data.(*storage.HeapTable)
	if !ok {
		t.Fatalf("events table data is %T, want *storage.HeapTable", tbl.Data)
	}
	return heap
}

// hotTree is the storm's query shape: a UDF-free join+aggregate, eligible for
// both the plan cache and the result cache.
func hotTree(t testing.TB, fx *serviceFixture) logical.Node {
	t.Helper()
	return joinAggTree(t, fx.cat, 2)
}

// runHotStorm fires requesters concurrent executors at svc — requesters/4
// tenants, every 4th request under a deadline — each running rounds
// executions of its own instance of the hot query shape. Every result is
// checked byte-for-byte against want; the per-request latencies come back
// sorted.
func runHotStorm(t *testing.T, fx *serviceFixture, svc *Service, requesters, rounds int, want []byte) []time.Duration {
	t.Helper()
	var mu sync.Mutex
	var latencies []time.Duration
	var firstErr error
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < requesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tree := hotTree(t, fx)
			tenant := fmt.Sprintf("tenant-%d", i%4)
			<-start
			for r := 0; r < rounds; r++ {
				req := Request{Tree: tree, Tenant: tenant}
				if (i*rounds+r)%4 == 0 {
					// Mixed deadlines: a quarter of the storm runs under a
					// generous timeout that correct serving must never trip.
					req.Timeout = 30 * time.Second
				}
				began := time.Now()
				res, err := svc.Execute(context.Background(), req)
				took := time.Since(began)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("requester %d round %d: %w", i, r, err)
				}
				if err == nil && !bytes.Equal(encodeRows(t, res.Rows), want) {
					if firstErr == nil {
						firstErr = fmt.Errorf("requester %d round %d: rows differ from reference", i, r)
					}
				}
				latencies = append(latencies, took)
				mu.Unlock()
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return latencies
}

func median(sorted []time.Duration) time.Duration {
	return sorted[len(sorted)/2]
}

// TestServiceHotQueryStormAcceptance is the acceptance criterion of the
// heavy-traffic serving layer: a 32-requester hot-query storm across 4
// tenants with mixed deadlines, byte-identical with and without the caches,
// with at least a 2x median-latency improvement on the cached path, and a
// write invalidating the cached result (version bump -> miss), pinned by
// the stats flags.
func TestServiceHotQueryStormAcceptance(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	want := encodeRows(t, referenceRun(t, fx, hotTree(t, fx)))

	const requesters, rounds = 32, 4
	tenants := map[string]TenantPolicy{
		"tenant-0": {Weight: 4},
		"tenant-1": {Weight: 2},
		"tenant-2": {Weight: 1},
		"tenant-3": {Weight: 1},
	}

	// Cold path: no serving caches at all.
	cold := New(fx.cat, Config{
		MaxConcurrent: 8,
		MaxQueued:     2 * requesters * rounds,
		Planner:       plan.Config{Link: fixedLink()},
		Tenants:       tenants,
	})
	coldLat := runHotStorm(t, fx, cold, requesters, rounds, want)

	// Hot path: plan cache, result cache and shared scans on. One warming
	// execution, then the same storm.
	hot := New(fx.cat, Config{
		MaxConcurrent:    8,
		MaxQueued:        2 * requesters * rounds,
		Planner:          plan.Config{Link: fixedLink()},
		Tenants:          tenants,
		PlanCacheEntries: 32,
		ResultCacheBytes: 32 << 20,
		SharedScans:      true,
	})
	warm, err := hot.Execute(context.Background(), Request{Tree: hotTree(t, fx)})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ResultFromCache {
		t.Fatal("warming execution cannot be a cache hit")
	}
	if !bytes.Equal(encodeRows(t, warm.Rows), want) {
		t.Fatal("warming execution rows differ from reference")
	}
	hotLat := runHotStorm(t, fx, hot, requesters, rounds, want)

	st := hot.Stats()
	if st.Caches.ResultHits < int64(requesters*rounds)/2 {
		t.Fatalf("result cache hit only %d of %d storm requests", st.Caches.ResultHits, requesters*rounds)
	}
	coldP50, hotP50 := median(coldLat), median(hotLat)
	if coldP50 < 2*hotP50 {
		t.Errorf("cached p50 %v is not >= 2x faster than uncached p50 %v", hotP50, coldP50)
	}

	// A write to a scanned table must invalidate: the next execution misses,
	// recomputes over the new data, and re-primes the cache.
	heap := eventsHeap(t, fx)
	if err := heap.Insert(types.NewTuple(
		types.NewInt(3), types.NewInt(7), types.NewString("storm-invalidate"), types.NewFloat(1.5),
	)); err != nil {
		t.Fatal(err)
	}
	newWant := encodeRows(t, referenceRun(t, fx, hotTree(t, fx)))
	if bytes.Equal(newWant, want) {
		t.Fatal("fixture write did not change the reference result")
	}
	res, err := hot.Execute(context.Background(), Request{Tree: hotTree(t, fx)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResultFromCache {
		t.Fatal("stale result served after a table write: version bump did not miss")
	}
	if !bytes.Equal(encodeRows(t, res.Rows), newWant) {
		t.Fatal("post-write execution rows differ from the new reference")
	}
	res, err = hot.Execute(context.Background(), Request{Tree: hotTree(t, fx)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ResultFromCache {
		t.Fatal("second post-write execution should hit the re-primed cache")
	}
	if !bytes.Equal(encodeRows(t, res.Rows), newWant) {
		t.Fatal("re-primed cache serves wrong rows")
	}
}

// TestServicePreparedStatementLifecycle pins the in-process prepared-statement
// contract: plan once, hit the statement's plan slot on re-execution, replan
// after a write, and reject malformed statements at Prepare time.
func TestServicePreparedStatementLifecycle(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{Planner: plan.Config{Link: fixedLink()}})

	ps, err := svc.Prepare(Request{Tree: hotTree(t, fx)})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeRows(t, referenceRun(t, fx, hotTree(t, fx)))

	first, err := ps.Execute(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanFromCache {
		t.Fatal("first execution cannot reuse a plan")
	}
	second, err := ps.Execute(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.PlanFromCache {
		t.Fatal("second execution over unchanged data did not reuse the statement's plan")
	}
	for _, res := range []*Result{first, second} {
		if !bytes.Equal(encodeRows(t, res.Rows), want) {
			t.Fatal("prepared execution rows differ from reference")
		}
	}

	// A write must force a replan — and the replanned execution must see the
	// new data.
	if err := eventsHeap(t, fx).Insert(types.NewTuple(
		types.NewInt(1), types.NewInt(3), types.NewString("prepared-invalidate"), types.NewFloat(9),
	)); err != nil {
		t.Fatal(err)
	}
	third, err := ps.Execute(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.PlanFromCache {
		t.Fatal("execution after a write reused a stale plan")
	}
	newWant := encodeRows(t, referenceRun(t, fx, hotTree(t, fx)))
	if !bytes.Equal(encodeRows(t, third.Rows), newWant) {
		t.Fatal("post-write prepared execution rows differ from the new reference")
	}

	if _, err := svc.Prepare(Request{}); err == nil {
		t.Fatal("Prepare accepted a statement with no tree")
	}
}

// TestServiceCacheInvalidationRace is the satellite race test: writers
// mutating the scanned table race prepared executions and result-cache
// lookups. Readers hold an RWMutex read lock so the data is stable during
// each check, writers the write lock — any stale cached answer surfaces as a
// byte-level mismatch against an uncached reference computed under the same
// lock. Run under -race in CI.
func TestServiceCacheInvalidationRace(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{
		MaxConcurrent:    8,
		Planner:          plan.Config{Link: fixedLink()},
		PlanCacheEntries: 16,
		ResultCacheBytes: 32 << 20,
		SharedScans:      true,
	})
	ps, err := svc.Prepare(Request{Tree: hotTree(t, fx)})
	if err != nil {
		t.Fatal(err)
	}
	heap := eventsHeap(t, fx)

	const (
		readers        = 6
		readsPerReader = 8
		writes         = 12
	)
	var dataMu sync.RWMutex
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 0; i < writes; i++ {
			dataMu.Lock()
			err := heap.Insert(types.NewTuple(
				types.NewInt(int64(i%17)), types.NewInt(int64(i%eventKeys)),
				types.NewString(fmt.Sprintf("race-write-%03d", i)), types.NewFloat(float64(i)),
			))
			dataMu.Unlock()
			if err != nil {
				writerDone <- err
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < readsPerReader; r++ {
				dataMu.RLock()
				res, err := ps.Execute(context.Background(), Request{})
				if err != nil {
					dataMu.RUnlock()
					errs <- fmt.Errorf("reader %d: %w", i, err)
					return
				}
				// Uncached ground truth over the same (stable) data. Any
				// cached answer from an earlier version would differ.
				want := referenceRun(t, fx, hotTree(t, fx))
				dataMu.RUnlock()
				if !bytes.Equal(encodeRows(t, res.Rows), encodeRows(t, want)) {
					errs <- fmt.Errorf("reader %d read %d: cached result differs from uncached reference (fromCache=%v)",
						i, r, res.Stats.ResultFromCache)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Sanity: the cache was actually in play, not bypassed.
	if st := svc.Stats(); st.Caches.ResultHits+st.Caches.ResultMisses == 0 {
		t.Fatal("no result-cache lookups happened: the race exercised nothing")
	}
}

// TestServerPreparedOverWire drives the MsgPrepare / MsgExecPrepared framing
// over TCP loopback: prepare once, execute repeatedly (byte-identical to the
// reference each time, including after a data-changing write), and surface a
// typed error for an unknown statement ID.
func TestServerPreparedOverWire(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{
		Planner:          plan.Config{Link: fixedLink()},
		PlanCacheEntries: 16,
		ResultCacheBytes: 16 << 20,
	})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	st, err := req.Prepare(wire.QuerySpec{Table: "dims", Project: []int{1}})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 0; i < 3; i++ {
		q, err := st.Exec(wire.ExecPrepared{Tenant: "acme"})
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		rows, err := q.Collect()
		if err != nil {
			t.Fatalf("collect %d: %v", i, err)
		}
		if len(rows) != dimRows {
			t.Fatalf("exec %d returned %d rows, want %d", i, len(rows), dimRows)
		}
	}

	// A UDF-bearing statement prepared on the same connection, checked
	// byte-for-byte against the unbudgeted in-process reference.
	udfStmt, err := req.Prepare(wire.QuerySpec{
		Table:      "events",
		UDFs:       []wire.UDFSpec{{Name: "score", ArgOrdinals: []int{1}}},
		ClientAddr: fx.clientAddr,
	})
	if err != nil {
		t.Fatalf("prepare udf statement: %v", err)
	}
	udfWant := encodeRows(t, referenceRun(t, fx,
		udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, nil, nil, nil)))
	for i := 0; i < 2; i++ {
		q, err := udfStmt.Exec(wire.ExecPrepared{})
		if err != nil {
			t.Fatalf("udf exec %d: %v", i, err)
		}
		got, err := q.Collect()
		if err != nil {
			t.Fatalf("udf collect %d: %v", i, err)
		}
		if !bytes.Equal(encodeRows(t, got), udfWant) {
			t.Fatalf("udf exec %d rows differ from reference", i)
		}
	}

	// Executing a statement ID the connection never prepared fails with a
	// server error, not a hang.
	bogus := &RemoteStatement{r: req, id: 999999, caps: st.caps}
	q, err := bogus.Exec(wire.ExecPrepared{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Collect(); err == nil {
		t.Fatal("executing an unknown statement ID succeeded")
	}
}
