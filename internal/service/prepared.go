package service

import (
	"context"
	"fmt"
	"sync"

	"csq/internal/logical"
	"csq/internal/plan"
)

// PreparedStatement is a query registered once and executed many times: the
// parse/resolve work happened at Prepare time (the caller hands a logical
// tree) and the rewrite/sample/probe/choose planning pass runs at most once
// per data version — the statement holds its own single-plan slot keyed like
// the plan cache, so repeated executions over unchanged data skip planning
// entirely, and the first execution after a write re-plans automatically.
// The slot works even when the service's global plan cache is disabled;
// when both exist they cooperate (the slot is checked first).
//
// A statement is safe for concurrent use: executions are ordinary service
// queries and the slot is mutex-guarded.
type PreparedStatement struct {
	svc *Service
	req Request // template: tree, link, tenant, budgets

	mu       sync.Mutex
	lastKey  string
	lastPlan *plan.TreePlan
}

// Prepare registers a statement for repeated execution. The tree is validated
// by a trial rewrite so malformed statements fail here, not on first execute.
func (s *Service) Prepare(req Request) (*PreparedStatement, error) {
	if req.Tree == nil {
		return nil, fmt.Errorf("service: prepared statement has no logical tree")
	}
	if _, err := logical.Rewrite(req.Tree); err != nil {
		return nil, fmt.Errorf("service: prepare: %w", err)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("service: closed")
	}
	return &PreparedStatement{svc: s, req: req}, nil
}

// cachedPlan returns the slot's plan when its version-stamped key matches.
func (ps *PreparedStatement) cachedPlan(key string) *plan.TreePlan {
	if ps == nil || key == "" {
		return nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.lastKey == key {
		return ps.lastPlan
	}
	return nil
}

// storePlan records the latest plan and its key in the slot.
func (ps *PreparedStatement) storePlan(key string, tp *plan.TreePlan) {
	if ps == nil || key == "" || tp == nil {
		return
	}
	ps.mu.Lock()
	ps.lastKey, ps.lastPlan = key, tp
	ps.mu.Unlock()
}

// Submit starts one execution of the statement, applying the request template
// with per-execution overrides (zero-valued fields of over inherit the
// template). The returned handle behaves exactly like an ad-hoc query's.
func (ps *PreparedStatement) Submit(ctx context.Context, over Request) (*Query, error) {
	req := ps.req
	req.stmt = ps
	if over.MemBudget != 0 {
		req.MemBudget = over.MemBudget
	}
	if over.Timeout != 0 {
		req.Timeout = over.Timeout
	}
	if over.Tenant != "" {
		req.Tenant = over.Tenant
	}
	if over.OnBatch != nil {
		req.OnBatch = over.OnBatch
	}
	if over.Link != nil {
		req.Link = over.Link
		req.LinkKey = over.LinkKey
	}
	return ps.svc.Submit(ctx, req)
}

// Execute runs the statement once and waits for its result.
func (ps *PreparedStatement) Execute(ctx context.Context, over Request) (*Result, error) {
	q, err := ps.Submit(ctx, over)
	if err != nil {
		return nil, err
	}
	return q.Wait()
}
