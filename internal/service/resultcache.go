package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"csq/internal/exec"
	"csq/internal/types"
)

// resultCache is the service's version-keyed result cache: a deterministic
// query whose UDFs are all catalog-declared pure can serve its entire result
// from memory when an identical query ran before over unchanged data. Keys
// come from plan.TreeVersionKey — the rendered logical tree plus the data
// version of every scanned table (and segment set) and the catalog version —
// so any write or catalog mutation invalidates implicitly: the stale entry
// simply stops being found and ages out of the LRU. This is the
// trigger-on-update reasoning of incremental integrity checking (Decker):
// a cached answer is exactly as fresh as the base facts it was derived from.
//
// Memory is governed like a query's: every stored result is charged to a
// service-level exec.MemTracker and least-recently-used entries are evicted
// until the cache is back under its byte budget. Single results larger than
// maxEntryFraction of the budget are not cached at all (they would evict
// everything else for one query's benefit).
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are *resultEntry
	tracker *exec.MemTracker

	hits   atomic.Int64
	misses atomic.Int64
}

type resultEntry struct {
	key   string
	rows  []types.Tuple
	bytes int64
}

// maxEntryFraction bounds one cached result's share of the cache budget.
const maxEntryFraction = 8

// tupleOverhead approximates the in-memory bookkeeping of one retained tuple
// beyond its encoded payload (slice header, value headers), mirroring the
// execution engine's accounting.
const tupleOverhead = 48

// newResultCache returns a cache bounded to budget bytes.
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		tracker: exec.NewMemTracker(budget),
	}
}

// resultBytes estimates the retained footprint of a result set.
func resultBytes(rows []types.Tuple) int64 {
	var n int64
	for _, t := range rows {
		n += int64(t.Size()) + tupleOverhead
	}
	return n
}

// lookup returns the cached rows for key, if any. Callers must not mutate the
// returned tuples (they are shared across queries; tuples are immutable by
// engine convention).
func (c *resultCache) lookup(key string) ([]types.Tuple, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*resultEntry).rows, true
}

// store records a result under key, evicting least-recently-used entries
// until the cache is under budget. Oversized results are dropped.
func (c *resultCache) store(key string, rows []types.Tuple) {
	if c == nil || key == "" {
		return
	}
	bytes := resultBytes(rows)
	if budget := c.tracker.Budget(); budget > 0 && bytes > budget/maxEntryFraction {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key means same data versions, hence the same result; keep the
		// incumbent and just refresh its recency.
		c.order.MoveToFront(el)
		return
	}
	_ = c.tracker.Grow(bytes) // budget tracker: never a hard limit
	c.entries[key] = c.order.PushFront(&resultEntry{key: key, rows: rows, bytes: bytes})
	for c.tracker.OverBudget() && c.order.Len() > 1 {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := c.order.Remove(back).(*resultEntry)
		delete(c.entries, e.key)
		c.tracker.Shrink(e.bytes)
	}
}

// Hits returns how many queries were served entirely from the cache.
func (c *resultCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns how many eligible lookups fell through to execution.
func (c *resultCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// UsedBytes returns the cache's current retained footprint.
func (c *resultCache) UsedBytes() int64 {
	if c == nil {
		return 0
	}
	return c.tracker.Used()
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
