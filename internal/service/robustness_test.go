package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"csq/internal/catalog"
	"csq/internal/client"
	"csq/internal/exec"
	"csq/internal/expr"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/storage"
	"csq/internal/types"
	"csq/internal/wire"
)

// ---- small fixtures --------------------------------------------------------

// miniCatalog builds a catalog with one small pure-server table ("nums": Key
// int, Val float), cheap enough to submit hundreds of times.
func miniCatalog(t testing.TB, rows int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	schema := types.NewSchema(
		types.Column{Name: "Key", Kind: types.KindInt},
		types.Column{Name: "Val", Kind: types.KindFloat},
	)
	tbl, err := storage.NewHeapTable("nums", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(types.NewTuple(types.NewInt(int64(i)), types.NewFloat(float64(i)/7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(&catalog.Table{Name: "nums", Schema: schema, Stats: tbl.Stats(), Data: tbl}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// numsTree builds a fresh filter tree over the mini catalog's table; each
// submission gets its own tree.
func numsTree(t testing.TB, cat *catalog.Catalog) logical.Node {
	t.Helper()
	scan, err := logical.NewScanByName(cat, "nums", "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := logical.NewFilter(scan, expr.NewBinary(expr.OpGe,
		expr.NewBoundColumnRef(0, types.KindInt),
		expr.NewConst(types.NewInt(0))))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// hangFixture is a catalog plus a client runtime whose "hang" UDF blocks every
// invocation until release is closed — the stuck-query shape: the operator
// tree stops advancing, so its progress heartbeat freezes, while cancellation
// still unblocks it (the per-query context slams the session connections).
type hangFixture struct {
	cat     *catalog.Catalog
	addr    string
	release chan struct{}
	once    sync.Once
}

func (h *hangFixture) unblock() { h.once.Do(func() { close(h.release) }) }

func newHangFixture(t *testing.T) *hangFixture {
	t.Helper()
	h := &hangFixture{cat: catalog.New(), release: make(chan struct{})}
	schema := types.NewSchema(types.Column{Name: "Key", Kind: types.KindInt})
	tbl, err := storage.NewHeapTable("rows", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tbl.Insert(types.NewTuple(types.NewInt(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.cat.AddTable(&catalog.Table{Name: "rows", Schema: schema, Stats: tbl.Stats(), Data: tbl}); err != nil {
		t.Fatal(err)
	}
	rt := client.NewRuntime()
	hang := &client.Func{
		Name: "hang", ArgKinds: []types.Kind{types.KindInt}, ResultKind: types.KindFloat, ResultSize: 9,
		Body: func(args []types.Value) (types.Value, error) {
			<-h.release
			k, err := args[0].Int()
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat(float64(k)), nil
		},
	}
	if err := rt.Register(hang); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cat.RegisterClientUDF(&wire.RegisterUDF{
		Name: hang.Name, ArgKinds: hang.ArgKinds, ResultKind: hang.ResultKind, ResultSize: hang.ResultSize,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rt.ServeListener(ln) }()
	h.addr = ln.Addr().String()
	t.Cleanup(func() {
		h.unblock()
		_ = ln.Close()
	})
	return h
}

func (h *hangFixture) tree(t *testing.T) logical.Node {
	t.Helper()
	scan, err := logical.NewScanByName(h.cat, "rows", "")
	if err != nil {
		t.Fatal(err)
	}
	q := plan.Query{
		Source:  scan,
		UDFs:    []exec.UDFBinding{{Name: "hang", ArgOrdinals: []int{0}, ResultKind: types.KindFloat}},
		Catalog: h.cat,
	}
	tree, err := q.Logical()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// awaitLeakFree fails the test if the goroutine count does not return to the
// baseline within 5s.
func awaitLeakFree(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d vs baseline %d\n%s", runtime.NumGoroutine(), baseline, filterStacks(string(buf)))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// blockerRequest builds a request whose OnBatch sink blocks on hold after
// signalling started — a way to pin an admission slot (release it by closing
// hold; the query then completes normally).
func blockerRequest(t *testing.T, cat *catalog.Catalog, started chan struct{}, hold <-chan struct{}) Request {
	t.Helper()
	var once sync.Once
	return Request{
		Tree: numsTree(t, cat),
		OnBatch: func(batch []types.Tuple) error {
			once.Do(func() { close(started) })
			<-hold
			return nil
		},
	}
}

// ---- admission controller units -------------------------------------------

func TestAdmissionQueueFullShedsTyped(t *testing.T) {
	a := newAdmission(1, 1, 0, nil)
	rel1, _, err := a.acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// One waiter occupies the whole queue.
	waiterErr := make(chan error, 1)
	go func() {
		rel, _, err := a.acquire(context.Background(), "")
		if err == nil {
			rel()
		}
		waiterErr <- err
	}()
	waitForQueued(t, a, 1)

	// The next submission finds the queue full and is shed, typed.
	_, _, err = a.acquire(context.Background(), "")
	var re *wire.RejectError
	if !errors.As(err, &re) || re.Reason != wire.RejectOverloaded {
		t.Fatalf("queue-full acquire returned %v, want typed overload reject", err)
	}
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("reject does not unwrap to wire.ErrOverloaded: %v", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("overload reject carries no retry-after hint")
	}
	if wire.Classify(err) != wire.ClassRetryable {
		t.Fatalf("overload shed classified %v, want retryable", wire.Classify(err))
	}

	rel1()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued acquire failed after release: %v", err)
	}
	st := a.stats()
	if st.Admitted != 2 || st.ShedOverload != 1 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 overload shed", st)
	}
}

func TestAdmissionDeadlineBudgetSheds(t *testing.T) {
	a := newAdmission(1, 8, 0, nil)
	rel, _, err := a.acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// 40ms of deadline leaves a ~20ms queue budget; the slot never frees, so
	// the query must be shed near the budget, keeping the rest of its
	// deadline usable elsewhere.
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, wait, err := a.acquire(ctx, "")
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("deadline-budget acquire returned %v, want overload shed", err)
	}
	if elapsed := time.Since(start); elapsed >= 40*time.Millisecond {
		t.Fatalf("shed after %v — the whole deadline burned in the queue", elapsed)
	}
	if wait <= 0 {
		t.Fatalf("shed reported no queue wait")
	}
	if st := a.stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestAdmissionDrainShedsWaiters(t *testing.T) {
	a := newAdmission(1, 8, 0, nil)
	rel, _, err := a.acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(context.Background(), "")
		waiterErr <- err
	}()
	waitForQueued(t, a, 1)

	a.drain()
	if err := <-waiterErr; !errors.Is(err, wire.ErrServerDraining) {
		t.Fatalf("drained waiter got %v, want wire.ErrServerDraining", err)
	}
	if _, _, err := a.acquire(context.Background(), ""); !errors.Is(err, wire.ErrServerDraining) {
		t.Fatalf("post-drain acquire got %v, want wire.ErrServerDraining", err)
	}
	a.drain() // idempotent
	if st := a.stats(); st.ShedDraining != 2 {
		t.Fatalf("ShedDraining = %d, want 2", st.ShedDraining)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 8, 0, nil)
	rel, _, err := a.acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(ctx, "")
		waiterErr <- err
	}()
	waitForQueued(t, a, 1)
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	if st := a.stats(); st.Queued != 0 {
		t.Fatalf("queue not drained after cancel: %+v", st)
	}
}

func waitForQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWaitHistogramQuantiles(t *testing.T) {
	var h waitHistogram
	for i := 0; i < 99; i++ {
		h.observe(time.Millisecond) // bucket <2ms
	}
	h.observe(3 * time.Second)
	if p50 := h.quantile(0.50); p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want <= 2ms", p50)
	}
	if p99 := h.quantile(0.99); p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want <= 2ms (99/100 observations under 1ms)", p99)
	}
	if p100 := h.quantile(1.0); p100 < time.Second {
		t.Fatalf("p100 = %v, want >= 1s", p100)
	}
}

// ---- service-level robustness ---------------------------------------------

// TestServiceShedsTypedWhenSaturated fills the one execution slot and the
// one queue seat, then checks the third query is shed as a typed, retryable
// overload reject in StateShed — and that the saturated queries still finish.
func TestServiceShedsTypedWhenSaturated(t *testing.T) {
	cat := miniCatalog(t, 512)
	svc := New(cat, Config{MaxConcurrent: 1, MaxQueued: 1})
	defer svc.Close()

	started := make(chan struct{})
	hold := make(chan struct{})
	blocker, err := svc.Submit(context.Background(), blockerRequest(t, cat, started, hold))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)})
	if err != nil {
		t.Fatal(err)
	}
	waitForQueued(t, svc.adm, 1)

	shed, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := shed.Wait()
	var re *wire.RejectError
	if !errors.As(werr, &re) || !errors.Is(werr, wire.ErrOverloaded) {
		t.Fatalf("saturated submit returned %v, want typed overload reject", werr)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("shed carries no retry-after hint")
	}
	if wire.Classify(werr) != wire.ClassRetryable {
		t.Fatalf("shed classified %v, want retryable", wire.Classify(werr))
	}
	if st := shed.Stats(); st.State != StateShed {
		t.Fatalf("shed query state = %s, want shed", st.State)
	}

	close(hold)
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if _, err := queued.Wait(); err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
	st := svc.Stats()
	if st.Admission.ShedOverload != 1 || st.Admission.Admitted != 2 {
		t.Fatalf("service stats = %+v, want 1 shed / 2 admitted", st.Admission)
	}
}

// TestServiceCancelWhileQueued cancels a query waiting for admission and
// checks it reports context.Canceled / StateCanceled without ever running —
// leak-free.
func TestServiceCancelWhileQueued(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()
	cat := miniCatalog(t, 512)
	svc := New(cat, Config{MaxConcurrent: 1, MaxQueued: 8})

	started := make(chan struct{})
	hold := make(chan struct{})
	blocker, err := svc.Submit(context.Background(), blockerRequest(t, cat, started, hold))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)})
	if err != nil {
		t.Fatal(err)
	}
	waitForQueued(t, svc.adm, 1)

	queued.Cancel()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued query returned %v, want context.Canceled", err)
	}
	if st := queued.Stats(); st.State != StateCanceled || !st.Started.IsZero() {
		t.Fatalf("cancelled queued query state = %s started = %v, want canceled and never started", st.State, st.Started)
	}

	close(hold)
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	svc.Close()
	awaitLeakFree(t, baseline)
}

// TestServiceCloseRacesSubmit hammers Submit from many goroutines while Close
// runs: no panic, every accepted query reaches a terminal state, and every
// refusal is the typed closed error. Run under -race.
func TestServiceCloseRacesSubmit(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()
	cat := miniCatalog(t, 128)
	svc := New(cat, Config{MaxConcurrent: 4, MaxQueued: 16})

	var mu sync.Mutex
	var accepted []*Query
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				q, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)})
				if err != nil {
					var re *wire.RejectError
					if err.Error() != "service: closed" && !errors.As(err, &re) {
						panic(fmt.Sprintf("unexpected submit error: %v", err))
					}
					continue
				}
				mu.Lock()
				accepted = append(accepted, q)
				mu.Unlock()
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let submissions interleave with Close
	svc.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, q := range accepted {
		<-q.Done()
		if st := q.Stats(); !st.State.Terminal() {
			t.Fatalf("query %d left non-terminal: %s", st.ID, st.State)
		}
	}
	if _, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)}); err == nil {
		t.Fatal("submit after Close succeeded")
	}
	awaitLeakFree(t, baseline)
}

// TestServiceShutdownDrains checks the graceful path: the running query
// finishes intact, the queued query and new submissions are shed as typed
// draining rejects, and Shutdown returns nil within its context.
func TestServiceShutdownDrains(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()
	cat := miniCatalog(t, 512)
	svc := New(cat, Config{MaxConcurrent: 1, MaxQueued: 8})

	started := make(chan struct{})
	hold := make(chan struct{})
	blocker, err := svc.Submit(context.Background(), blockerRequest(t, cat, started, hold))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)})
	if err != nil {
		t.Fatal(err)
	}
	waitForQueued(t, svc.adm, 1)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- svc.Shutdown(ctx)
	}()

	// The queued query is shed promptly, typed as draining.
	if _, err := queued.Wait(); !errors.Is(err, wire.ErrServerDraining) {
		t.Fatalf("queued query got %v during drain, want wire.ErrServerDraining", err)
	}
	if st := queued.Stats(); st.State != StateShed {
		t.Fatalf("drained queued query state = %s, want shed", st.State)
	}
	// New submissions are refused, typed.
	if _, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)}); !errors.Is(err, wire.ErrServerDraining) {
		t.Fatalf("submit during drain got %v, want wire.ErrServerDraining", err)
	}
	if !svc.Stats().Draining {
		t.Fatal("service does not report draining")
	}

	// The running query is untouched: release it and it completes.
	close(hold)
	res, err := blocker.Wait()
	if err != nil {
		t.Fatalf("running query failed during graceful drain: %v", err)
	}
	if res.RowCount != 512 {
		t.Fatalf("running query produced %d rows, want 512", res.RowCount)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful Shutdown returned %v", err)
	}
	if _, err := svc.Submit(context.Background(), Request{Tree: numsTree(t, cat)}); err == nil || err.Error() != "service: closed" {
		t.Fatalf("submit after Shutdown got %v, want service: closed", err)
	}
	awaitLeakFree(t, baseline)
}

// TestServiceShutdownTimeoutCancels checks the impatient path: a wedged query
// is cancelled when the drain context expires, and Shutdown reports the
// timeout.
func TestServiceShutdownTimeoutCancels(t *testing.T) {
	h := newHangFixture(t)
	svc := New(h.cat, Config{MaxConcurrent: 2, Planner: plan.Config{Link: fixedLink()}})
	q, err := svc.Submit(context.Background(), Request{
		Tree: h.tree(t), Link: &exec.DialLink{Addr: h.addr}, LinkKey: h.addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get wedged inside the hanging UDF call.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out Shutdown returned %v, want context.DeadlineExceeded", err)
	}
	if _, err := q.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("wedged query got %v after drain timeout, want context.Canceled", err)
	}
	h.unblock()
}

// TestServiceWatchdogCancelsStalled wedges a query inside a never-returning
// UDF call and checks the watchdog kills it with ErrStalled once its progress
// heartbeat freezes for the stall window — while a healthy concurrent query
// is left alone.
func TestServiceWatchdogCancelsStalled(t *testing.T) {
	h := newHangFixture(t)
	svc := New(h.cat, Config{
		MaxConcurrent:    2,
		StallTimeout:     200 * time.Millisecond,
		WatchdogInterval: 25 * time.Millisecond,
		Planner:          plan.Config{Link: fixedLink()},
	})
	defer svc.Close()

	stuck, err := svc.Submit(context.Background(), Request{
		Tree: h.tree(t), Link: &exec.DialLink{Addr: h.addr}, LinkKey: h.addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	healthyTree := func() logical.Node {
		scan, err := logical.NewScanByName(h.cat, "rows", "")
		if err != nil {
			t.Fatal(err)
		}
		return scan
	}
	if _, err := svc.Execute(context.Background(), Request{Tree: healthyTree()}); err != nil {
		t.Fatalf("healthy query failed while watchdog armed: %v", err)
	}

	_, werr := stuck.Wait()
	if !errors.Is(werr, ErrStalled) {
		t.Fatalf("stalled query returned %v, want ErrStalled", werr)
	}
	st := stuck.Stats()
	if st.State != StateFailed || !st.Stalled {
		t.Fatalf("stalled query state = %s stalled = %v, want failed/true", st.State, st.Stalled)
	}
	if n := svc.Stats().StallCancels; n != 1 {
		t.Fatalf("StallCancels = %d, want 1", n)
	}
	h.unblock()
}

// ---- wire-level robustness -------------------------------------------------

// TestServerShedTypedOverWire saturates a one-slot server through the framed
// protocol and checks the shed crosses the wire as a typed MsgQueryReject the
// requester surfaces as wire.ErrOverloaded — then relieves the pressure and
// checks ExecuteWithRetry rides the typed reject to success.
func TestServerShedTypedOverWire(t *testing.T) {
	h := newHangFixture(t)
	svc := New(h.cat, Config{MaxConcurrent: 1, MaxQueued: 1, Planner: plan.Config{Link: fixedLink()}})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Close)

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	hangSpec := wire.QuerySpec{
		Table:      "rows",
		UDFs:       []wire.UDFSpec{{Name: "hang", ArgOrdinals: []int{0}}},
		ClientAddr: h.addr,
	}
	q1, err := r.Submit(hangSpec)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := r.Submit(hangSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitForQueued(t, svc.adm, 1)

	q3, err := r.Submit(wire.QuerySpec{Table: "rows"})
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := q3.Collect()
	var re *wire.RejectError
	if !errors.As(cerr, &re) || !errors.Is(cerr, wire.ErrOverloaded) {
		t.Fatalf("wire shed surfaced as %v, want typed *wire.RejectError overload", cerr)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("wire reject lost its retry-after hint")
	}
	if wire.Classify(cerr) != wire.ClassRetryable {
		t.Fatalf("wire shed classified %v, want retryable", wire.Classify(cerr))
	}

	// Relieve the hang shortly; the retrying submit must eventually land.
	go func() {
		time.Sleep(60 * time.Millisecond)
		h.unblock()
	}()
	rows, err := r.ExecuteWithRetry(context.Background(), wire.QuerySpec{Table: "rows"}, RetryPolicy{
		MaxAttempts: 10,
		Backoff:     wire.Backoff{Base: 25 * time.Millisecond, Max: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("ExecuteWithRetry failed: %v", err)
	}
	if len(rows) != 64 {
		t.Fatalf("retried query returned %d rows, want 64", len(rows))
	}
	if _, err := q1.Collect(); err != nil {
		t.Fatalf("first hang query failed after release: %v", err)
	}
	if _, err := q2.Collect(); err != nil {
		t.Fatalf("second hang query failed after release: %v", err)
	}
	if qs := r.QueueStats(); qs.HighWater < 1 {
		t.Fatalf("requester queue high-water mark never moved: %+v", qs)
	}
}

// TestServerShutdownOverWire drains a server mid-query: the admitted query's
// stream still ends with a clean End frame and byte-identical rows, new
// submissions during the drain are shed as typed draining rejects, and the
// control connection dies only after the flush.
func TestServerShutdownOverWire(t *testing.T) {
	h := newHangFixture(t)
	svc := New(h.cat, Config{MaxConcurrent: 1, Planner: plan.Config{Link: fixedLink()}})
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { _ = srv.Serve(ln); close(serveDone) }()

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	inflight, err := r.Submit(wire.QuerySpec{
		Table:      "rows",
		UDFs:       []wire.UDFSpec{{Name: "hang", ArgOrdinals: []int{0}}},
		ClientAddr: h.addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the query get into its UDF calls before the drain starts.
	time.Sleep(50 * time.Millisecond)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// A submission during the drain is shed, typed.
	waitDraining(t, svc)
	shed, err := r.Submit(wire.QuerySpec{Table: "rows"})
	if err != nil {
		t.Fatal(err)
	}
	if _, cerr := shed.Collect(); !errors.Is(cerr, wire.ErrServerDraining) {
		t.Fatalf("drain-time submit surfaced %v, want wire.ErrServerDraining", cerr)
	}

	// Release the hang: the admitted query must flush a clean, complete
	// stream before the connection drops.
	h.unblock()
	rows, err := inflight.Collect()
	if err != nil {
		t.Fatalf("in-flight query failed during graceful drain: %v", err)
	}
	want := make([]types.Tuple, 0, 64)
	for i := 0; i < 64; i++ {
		want = append(want, types.NewTuple(types.NewInt(int64(i)), types.NewFloat(float64(i))))
	}
	if !bytes.Equal(encodeRows(t, rows), encodeRows(t, want)) {
		t.Fatalf("drained query rows differ from reference (%d rows)", len(rows))
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful server Shutdown returned %v", err)
	}
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

func waitDraining(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !svc.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("service never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
}
