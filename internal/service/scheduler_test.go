package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// acquireAsync enqueues one acquire on its own goroutine and reports the
// grant through the returned channel.
type grantResult struct {
	seq     int
	tenant  string
	release func()
	err     error
}

func acquireAsync(a *admission, tenant string, seq int, out chan<- grantResult) {
	go func() {
		release, _, err := a.acquire(context.Background(), tenant)
		out <- grantResult{seq: seq, tenant: tenant, release: release, err: err}
	}()
}

// waitQueued spins until the admission controller reports n queued waiters.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.stats().Queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters (at %d)", n, a.stats().Queued)
}

// TestAdmissionIntraTenantFIFO pins strict FIFO dispatch within one tenant:
// with the single slot held, waiters enqueued in order 0..n-1 must be granted
// in exactly that order, with no ties broken by luck.
func TestAdmissionIntraTenantFIFO(t *testing.T) {
	a := newAdmission(1, 64, 0, nil)
	hold, _, err := a.acquire(context.Background(), "acme")
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	grants := make(chan grantResult, n)
	for i := 0; i < n; i++ {
		acquireAsync(a, "acme", i, grants)
		// Each waiter must be enqueued before the next arrives, or arrival
		// order itself would be racy.
		waitQueued(t, a, i+1)
	}

	hold()
	for want := 0; want < n; want++ {
		g := <-grants
		if g.err != nil {
			t.Fatalf("waiter %d: %v", g.seq, g.err)
		}
		if g.seq != want {
			t.Fatalf("grant order violated FIFO: got waiter %d, want %d", g.seq, want)
		}
		g.release()
	}
}

// TestAdmissionWeightedFairness saturates one slot with two tenants of
// weights 3 and 1 and checks the deficit-round-robin dispatcher splits the
// grants by weight.
func TestAdmissionWeightedFairness(t *testing.T) {
	policies := map[string]TenantPolicy{
		"heavy": {Weight: 3},
		"light": {Weight: 1},
	}
	a := newAdmission(1, 256, 0, policies)
	hold, _, err := a.acquire(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 24
	grants := make(chan grantResult, 2*perTenant)
	queued := 0
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"heavy", "light"} {
			acquireAsync(a, tenant, i, grants)
			queued++
			waitQueued(t, a, queued)
		}
	}

	// Drain every waiter through the single slot, tallying the first window:
	// with both queues constantly backlogged, each full DRR rotation grants
	// heavy 3 and light 1.
	hold()
	counts := map[string]int{}
	window := 16
	for i := 0; i < 2*perTenant; i++ {
		g := <-grants
		if g.err != nil {
			t.Fatalf("acquire: %v", g.err)
		}
		if i < window {
			counts[g.tenant]++
		}
		g.release()
	}
	if counts["heavy"] != 12 || counts["light"] != 4 {
		t.Fatalf("weighted split over %d grants = heavy:%d light:%d, want heavy:12 light:4",
			window, counts["heavy"], counts["light"])
	}
}

// TestAdmissionTenantQuota caps one tenant at a single concurrent query and
// checks spare global slots go to other tenants instead.
func TestAdmissionTenantQuota(t *testing.T) {
	policies := map[string]TenantPolicy{
		"capped": {Weight: 1, MaxConcurrent: 1},
	}
	a := newAdmission(4, 64, 0, policies)

	rel1, _, err := a.acquire(context.Background(), "capped")
	if err != nil {
		t.Fatal(err)
	}
	// Second capped acquire must queue despite three free global slots.
	grants := make(chan grantResult, 1)
	acquireAsync(a, "capped", 1, grants)
	waitQueued(t, a, 1)

	// An uncapped tenant sails through.
	rel2, _, err := a.acquire(context.Background(), "other")
	if err != nil {
		t.Fatalf("uncapped tenant blocked by peer quota: %v", err)
	}
	rel2()

	select {
	case g := <-grants:
		t.Fatalf("quota violated: second capped query granted while first holds the quota (err=%v)", g.err)
	case <-time.After(50 * time.Millisecond):
	}

	rel1()
	g := <-grants
	if g.err != nil {
		t.Fatal(g.err)
	}
	st := a.stats().Tenants["capped"]
	if st.Running != 1 || st.Quota != 1 {
		t.Fatalf("capped tenant stats = running %d quota %d, want 1/1", st.Running, st.Quota)
	}
	g.release()
}

// TestAdmissionTenantStats checks the per-tenant counters the daemon's stats
// line prints: admitted and shed per tenant, and sorted TenantNames.
func TestAdmissionTenantStats(t *testing.T) {
	a := newAdmission(1, 1, 0, map[string]TenantPolicy{"b": {Weight: 2}})

	hold, _, err := a.acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the 1-deep queue, then shed one from tenant "a".
	grants := make(chan grantResult, 1)
	acquireAsync(a, "b", 0, grants)
	waitQueued(t, a, 1)
	if _, _, err := a.acquire(context.Background(), "a"); err == nil {
		t.Fatal("expected queue-full shed")
	}
	hold()
	g := <-grants
	if g.err != nil {
		t.Fatal(g.err)
	}
	g.release()

	st := a.stats()
	names := st.TenantNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TenantNames = %v, want [a b]", names)
	}
	if st.Tenants["b"].Admitted != 2 || st.Tenants["b"].Weight != 2 {
		t.Fatalf("tenant b stats = %+v, want 2 admitted at weight 2", st.Tenants["b"])
	}
	if st.Tenants["a"].Shed != 1 {
		t.Fatalf("tenant a shed = %d, want 1", st.Tenants["a"].Shed)
	}
}

// TestAdmissionConcurrentTenantsUnderRace hammers the scheduler from many
// tenants at once — the lock-ordering and deficit bookkeeping must hold up
// under the race detector, and every waiter must eventually be granted.
func TestAdmissionConcurrentTenantsUnderRace(t *testing.T) {
	a := newAdmission(4, 1024, 0, map[string]TenantPolicy{
		"t0": {Weight: 4},
		"t1": {Weight: 2, MaxConcurrent: 2},
	})
	var wg sync.WaitGroup
	var granted int64
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%4)
			for j := 0; j < 50; j++ {
				release, _, err := a.acquire(context.Background(), tenant)
				if err != nil {
					t.Errorf("acquire(%s): %v", tenant, err)
					return
				}
				mu.Lock()
				granted++
				mu.Unlock()
				release()
			}
		}(i)
	}
	wg.Wait()
	if granted != 16*50 {
		t.Fatalf("granted %d acquisitions, want %d", granted, 16*50)
	}
	if got := a.stats().Admitted; got != 16*50 {
		t.Fatalf("stats.Admitted = %d, want %d", got, 16*50)
	}
}
