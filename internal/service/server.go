package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/exec"
	"csq/internal/expr"
	"csq/internal/lang"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/types"
	"csq/internal/wire"
)

// Server is the wire front-end of a Service: it listens for requester
// connections speaking the framed protocol's MsgQuery/MsgCancel extension and
// streams query results back as MsgResultBatch frames (SessionID = query ID)
// terminated by MsgEnd, or MsgError on failure.
//
// One connection multiplexes any number of concurrent queries. A requester
// may also announce client UDF metadata with MsgRegisterUDF frames (upserted
// into the service catalog), exactly as the client runtime's Announce does.
//
// Capabilities are negotiated like the dict-batch flag: the QuerySpec carries
// requested capability bits, the MsgQueryAck echoes the supported subset, and
// a requester only uses what was echoed — so both directions degrade
// gracefully against older peers.
type Server struct {
	svc *Service

	// DialTimeout bounds UDF-session connection establishment.
	DialTimeout time.Duration
	// WriteStallTimeout bounds how long one result-frame write to a
	// requester may block. A requester that dies silently (or stops reading)
	// would otherwise wedge its queries' streaming sends forever — holding
	// admission slots past any deadline, since the shared control connection
	// cannot be bound to a single query's context. Zero selects
	// DefaultWriteStallTimeout.
	WriteStallTimeout time.Duration

	// streams counts in-flight result-stream goroutines, so Shutdown can
	// wait for every admitted query's terminal frame to flush before the
	// connections drop.
	streams sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// DefaultWriteStallTimeout is the default bound on one control-connection
// write.
const DefaultWriteStallTimeout = 30 * time.Second

func (s *Server) writeStall() time.Duration {
	if s.WriteStallTimeout <= 0 {
		return DefaultWriteStallTimeout
	}
	return s.WriteStallTimeout
}

// stallGuardConn arms a fresh write deadline before every write, so a peer
// that stops reading fails the writer within the stall timeout instead of
// blocking it forever. Reads are unaffected (the control loop legitimately
// idles waiting for the next request).
type stallGuardConn struct {
	net.Conn
	stall time.Duration
}

func (c *stallGuardConn) Write(p []byte) (int, error) {
	_ = c.Conn.SetWriteDeadline(time.Now().Add(c.stall))
	return c.Conn.Write(p)
}

// serverCaps is the capability subset this server supports.
const serverCaps = wire.CapCancel | wire.CapTextQuery | wire.CapReject | wire.CapPrepared

// NewServer builds a wire front-end over the service.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts requester connections on ln until the listener closes or
// Close is called.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("service: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("service: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Addr returns the listener address, when serving.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every requester connection (cancelling the
// queries they own) and shuts the service down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.svc.Close()
}

// Shutdown drains the server gracefully: it stops accepting connections,
// drains the service (running queries finish, queued and new ones are shed
// with typed draining rejects), waits for every admitted query's result
// stream to flush its terminal frame, then closes the requester connections.
// If ctx expires first the stragglers are cancelled and the connections are
// closed anyway. It returns ctx's error when the drain timed out.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if alreadyClosed {
		return nil
	}
	err := s.svc.Shutdown(ctx)
	// Every query is terminal now; its stream goroutine only has the End (or
	// Error/Reject) frame left to write. Give those writes until ctx expires.
	flushed := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

// handleConn is one requester connection's control loop.
func (s *Server) handleConn(nc net.Conn) {
	conn := wire.NewConn(&stallGuardConn{Conn: nc, stall: s.writeStall()})
	owned := struct {
		sync.Mutex
		queries map[uint64]*Query
	}{queries: make(map[uint64]*Query)}
	// Prepared statements live for the connection; they hold no slots or
	// sessions, so disconnect cleanup is just letting the map go.
	stmts := make(map[uint64]*connStatement)
	defer func() {
		// A dying requester connection cancels every query it owns; the
		// per-query contexts tear their UDF sessions down.
		owned.Lock()
		qs := make([]*Query, 0, len(owned.queries))
		for _, q := range owned.queries {
			qs = append(qs, q)
		}
		owned.Unlock()
		for _, q := range qs {
			q.Cancel()
		}
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()

	for {
		msg, err := conn.Receive()
		if err != nil {
			return // disconnect (clean or not) ends the control loop
		}
		switch msg.Type {
		case wire.MsgRegisterUDF:
			reg, err := wire.DecodeRegisterUDF(msg.Payload)
			if err != nil {
				_ = s.sendError(conn, 0, fmt.Sprintf("bad registration: %v", err))
				continue
			}
			if _, err := s.svc.cat.RegisterClientUDF(reg); err != nil {
				_ = s.sendError(conn, 0, err.Error())
			}
		case wire.MsgEnd:
			// End of an announcement burst (client.Runtime.Announce sends
			// one); nothing to do.
		case wire.MsgQuery:
			spec, err := wire.DecodeQuerySpec(msg.Payload)
			if err != nil {
				_ = s.sendError(conn, 0, fmt.Sprintf("bad query: %v", err))
				continue
			}
			// A peer-chosen QueryID that is already in flight on this
			// connection would interleave two result streams under one ID
			// and orphan the earlier query; reject it up front.
			owned.Lock()
			_, dup := owned.queries[spec.QueryID]
			owned.Unlock()
			var req Request
			if dup {
				err = fmt.Errorf("query ID %d is already in flight on this connection", spec.QueryID)
			} else {
				req, err = s.buildRequest(conn, spec)
			}
			ack := &wire.QueryAck{QueryID: spec.QueryID, OK: err == nil, Caps: spec.Caps & serverCaps}
			if err != nil {
				ack.Error = err.Error()
			}
			// The ack goes out before the query is submitted, so no result
			// batch can beat it onto the wire.
			if sendErr := conn.Send(wire.MsgQueryAck, wire.EncodeQueryAck(ack)); sendErr != nil {
				return
			}
			if err != nil {
				continue
			}
			q, serr := s.svc.Submit(context.Background(), req)
			if serr != nil {
				s.sendFailure(conn, ack.Caps, spec.QueryID, serr)
				continue
			}
			owned.Lock()
			owned.queries[spec.QueryID] = q
			owned.Unlock()
			s.streams.Add(1)
			go func(id uint64, caps uint32) {
				defer s.streams.Done()
				s.streamResult(conn, caps, id, q)
				owned.Lock()
				delete(owned.queries, id)
				owned.Unlock()
			}(spec.QueryID, ack.Caps)
		case wire.MsgPrepare:
			// A prepared statement arrives as a QuerySpec whose QueryID is the
			// statement ID; the tree is built (and a textual query compiled)
			// once, here, and executions reference the statement by ID.
			spec, err := wire.DecodeQuerySpec(msg.Payload)
			if err != nil {
				_ = s.sendError(conn, 0, fmt.Sprintf("bad prepare: %v", err))
				continue
			}
			var ps *PreparedStatement
			if _, dup := stmts[spec.QueryID]; dup {
				err = fmt.Errorf("statement ID %d is already prepared on this connection", spec.QueryID)
			} else {
				var req Request
				if req, err = s.buildStatementTemplate(spec); err == nil {
					ps, err = s.svc.Prepare(req)
				}
			}
			ack := &wire.QueryAck{QueryID: spec.QueryID, OK: err == nil, Caps: spec.Caps & serverCaps}
			if err != nil {
				ack.Error = err.Error()
			} else {
				stmts[spec.QueryID] = &connStatement{ps: ps, caps: ack.Caps}
			}
			if sendErr := conn.Send(wire.MsgPrepareAck, wire.EncodeQueryAck(ack)); sendErr != nil {
				return
			}
		case wire.MsgExecPrepared:
			ep, err := wire.DecodeExecPrepared(msg.Payload)
			if err != nil {
				_ = s.sendError(conn, 0, fmt.Sprintf("bad exec prepared: %v", err))
				continue
			}
			st := stmts[ep.StatementID]
			if st == nil {
				_ = s.sendError(conn, ep.QueryID, fmt.Sprintf("statement %d is not prepared on this connection", ep.StatementID))
				continue
			}
			owned.Lock()
			_, dup := owned.queries[ep.QueryID]
			owned.Unlock()
			if dup {
				_ = s.sendError(conn, ep.QueryID, fmt.Sprintf("query ID %d is already in flight on this connection", ep.QueryID))
				continue
			}
			over := Request{Tenant: ep.Tenant, MemBudget: ep.MemBudget, OnBatch: s.batchSender(conn, ep.QueryID)}
			if ep.TimeoutMillis > 0 {
				over.Timeout = time.Duration(ep.TimeoutMillis) * time.Millisecond
			}
			q, serr := st.ps.Submit(context.Background(), over)
			if serr != nil {
				s.sendFailure(conn, st.caps, ep.QueryID, serr)
				continue
			}
			owned.Lock()
			owned.queries[ep.QueryID] = q
			owned.Unlock()
			s.streams.Add(1)
			go func(id uint64, caps uint32) {
				defer s.streams.Done()
				s.streamResult(conn, caps, id, q)
				owned.Lock()
				delete(owned.queries, id)
				owned.Unlock()
			}(ep.QueryID, st.caps)
		case wire.MsgCancel:
			c, err := wire.DecodeCancel(msg.Payload)
			if err != nil {
				_ = s.sendError(conn, 0, fmt.Sprintf("bad cancel: %v", err))
				continue
			}
			owned.Lock()
			q := owned.queries[c.QueryID]
			owned.Unlock()
			if q != nil {
				q.Cancel()
			}
		default:
			_ = s.sendError(conn, 0, fmt.Sprintf("unexpected message %s", msg.Type))
		}
	}
}

// connStatement is a prepared statement owned by one requester connection,
// along with the capability subset its prepare negotiated (so execution
// failures degrade the same way the ack promised).
type connStatement struct {
	ps   *PreparedStatement
	caps uint32
}

// buildStatementTemplate translates a QuerySpec into a prepared statement's
// request template: the tree and resource envelope, but no per-execution
// result sink — each execution attaches its own, keyed by its own query ID.
func (s *Server) buildStatementTemplate(spec *wire.QuerySpec) (Request, error) {
	tree, err := s.buildTree(spec)
	if err != nil {
		return Request{}, err
	}
	req := Request{
		Tree:      tree,
		MemBudget: spec.MemBudget,
		Tenant:    spec.Tenant,
	}
	if spec.TimeoutMillis > 0 {
		req.Timeout = time.Duration(spec.TimeoutMillis) * time.Millisecond
	}
	if spec.ClientAddr != "" {
		req.Link = &exec.DialLink{Addr: spec.ClientAddr, DialTimeout: s.DialTimeout}
		req.LinkKey = spec.ClientAddr
	}
	return req, nil
}

// buildRequest translates a QuerySpec into a service request; the caller
// submits it after acknowledging, and streams results via streamResult.
func (s *Server) buildRequest(conn *wire.Conn, spec *wire.QuerySpec) (Request, error) {
	req, err := s.buildStatementTemplate(spec)
	if err != nil {
		return Request{}, err
	}
	// Results are streamed straight onto the control connection as they are
	// produced; Conn.Send serialises concurrent queries' frames.
	req.OnBatch = s.batchSender(conn, spec.QueryID)
	return req, nil
}

// batchSender returns an OnBatch sink that frames result batches under id on
// the shared control connection.
func (s *Server) batchSender(conn *wire.Conn, id uint64) func([]types.Tuple) error {
	return func(batch []types.Tuple) error {
		payload := wire.GetBuffer()
		defer wire.PutBuffer(payload)
		b := wire.TupleBatch{SessionID: id, Tuples: batch}
		data, err := wire.AppendTupleBatch(*payload, &b)
		if err != nil {
			return err
		}
		*payload = data
		return conn.Send(wire.MsgResultBatch, data)
	}
}

// streamResult waits the query out and terminates its result stream with an
// End (row count), a typed QueryReject (shed queries, when the requester
// negotiated CapReject) or an Error frame.
func (s *Server) streamResult(conn *wire.Conn, caps uint32, id uint64, q *Query) {
	res, err := q.Wait()
	if err != nil {
		s.sendFailure(conn, caps, id, err)
		return
	}
	_ = conn.Send(wire.MsgEnd, wire.EncodeEnd(&wire.End{SessionID: id, Rows: uint64(res.RowCount)}))
}

// sendFailure terminates a query's stream: sheds travel as typed MsgQueryReject
// frames when the requester negotiated CapReject (so it can classify them as
// retryable and honor the retry-after hint), everything else — including sheds
// to pre-CapReject peers — degrades to a plain MsgError.
func (s *Server) sendFailure(conn *wire.Conn, caps uint32, id uint64, err error) {
	var re *wire.RejectError
	if caps&wire.CapReject != 0 && errors.As(err, &re) {
		qr := &wire.QueryReject{
			QueryID:          id,
			Reason:           re.Reason,
			RetryAfterMillis: re.RetryAfter.Milliseconds(),
		}
		_ = conn.Send(wire.MsgQueryReject, wire.EncodeQueryReject(qr))
		return
	}
	_ = s.sendError(conn, id, err.Error())
}

func (s *Server) sendError(conn *wire.Conn, session uint64, msg string) error {
	return conn.Send(wire.MsgError, wire.EncodeError(&wire.ErrorMsg{SessionID: session, Message: msg}))
}

// buildTree assembles the spec's logical tree. A textual query (spec.Text) is
// parsed, resolved and compiled server-side against the service catalog;
// otherwise the structural fields describe the classic scan → [filter] →
// [udf-apply with pushable/projection] shape over one named table.
func (s *Server) buildTree(spec *wire.QuerySpec) (logical.Node, error) {
	if spec.Text != "" {
		return lang.Compile(s.svc.cat, spec.Text)
	}
	table, err := s.svc.cat.Table(spec.Table)
	if err != nil {
		return nil, err
	}
	scan, err := logical.NewScan(table, "")
	if err != nil {
		return nil, err
	}
	var serverFilter expr.Expr
	if len(spec.Filter) > 0 {
		serverFilter, err = expr.Unmarshal(spec.Filter)
		if err != nil {
			return nil, fmt.Errorf("service: query filter: %w", err)
		}
	}
	if len(spec.UDFs) == 0 {
		// Pure server-side query.
		var n logical.Node = scan
		if serverFilter != nil {
			if n, err = logical.NewFilter(n, serverFilter); err != nil {
				return nil, err
			}
		}
		if len(spec.Project) > 0 {
			if n, err = logical.NewProject(n, spec.Project); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	bindings := make([]exec.UDFBinding, 0, len(spec.UDFs))
	for _, u := range spec.UDFs {
		udf, err := s.svc.cat.UDF(u.Name)
		if err != nil {
			return nil, fmt.Errorf("service: query UDF %q is not registered", u.Name)
		}
		bindings = append(bindings, exec.UDFBinding{
			Name:        udf.Name,
			ArgOrdinals: append([]int(nil), u.ArgOrdinals...),
			ResultKind:  udf.ResultKind,
		})
	}
	var pushable expr.Expr
	if len(spec.Pushable) > 0 {
		pushable, err = expr.Unmarshal(spec.Pushable)
		if err != nil {
			return nil, fmt.Errorf("service: pushable predicate: %w", err)
		}
	}
	q := plan.Query{
		Source:       scan,
		UDFs:         bindings,
		ServerFilter: serverFilter,
		Pushable:     pushable,
		Project:      append([]int(nil), spec.Project...),
	}
	return q.Logical()
}

// Requester is the client side of the MsgQuery protocol: a thin helper that
// submits queries to a running server and collects streamed results. It is
// what cmd tools and tests use; each Requester owns one control connection
// and may run any number of queries over it concurrently.
type Requester struct {
	conn *wire.Conn

	queueHWM atomic.Int64 // deepest any query's event queue ever got
	queueHot atomic.Int64 // deliveries that found a queue past the warn depth

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*eventQueue
	readErr error
	started bool
}

// EventQueueWarnDepth is the per-query event-buffer depth past which the
// requester counts deliveries as hot (QueueStats.HotDeliveries). The buffer
// stays unbounded — dropping or blocking would wedge the shared read loop —
// but a depth this deep means a collector is badly behind its stream.
const EventQueueWarnDepth = 1024

// RequesterQueueStats reports the pressure on the requester's per-query event
// buffers.
type RequesterQueueStats struct {
	// HighWater is the deepest any query's event buffer ever got.
	HighWater int
	// HotDeliveries counts frames delivered to a buffer already deeper than
	// EventQueueWarnDepth.
	HotDeliveries int64
}

// QueueStats returns the event-buffer pressure counters.
func (r *Requester) QueueStats() RequesterQueueStats {
	return RequesterQueueStats{
		HighWater:     int(r.queueHWM.Load()),
		HotDeliveries: r.queueHot.Load(),
	}
}

type requesterEvent struct {
	batch []types.Tuple
	rows  uint64
	err   error
	done  bool
	ack   *wire.QueryAck
}

// eventQueue is an unbounded per-query event buffer. Unbounded matters: the
// read loop demultiplexes all queries of one connection, so a delivery that
// could block (a full fixed-size channel of an abandoned or slow collector)
// would wedge every other query's stream. Memory stays bounded by the
// query's own result size — the same bound Collect imposes anyway.
type eventQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	evs    []requesterEvent
	closed bool
}

func newEventQueue() *eventQueue {
	q := &eventQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an event and returns the resulting depth; it never blocks.
func (q *eventQueue) push(ev requesterEvent) int {
	q.mu.Lock()
	if !q.closed {
		q.evs = append(q.evs, ev)
	}
	depth := len(q.evs)
	q.mu.Unlock()
	q.cond.Signal()
	return depth
}

// close wakes every waiter; pending events stay readable.
func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks for the next event; ok is false once the queue is closed and
// drained.
func (q *eventQueue) pop() (requesterEvent, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.evs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.evs) == 0 {
		return requesterEvent{}, false
	}
	ev := q.evs[0]
	q.evs = q.evs[1:]
	return ev, true
}

// NewRequester wraps an established connection to a query server.
func NewRequester(nc net.Conn) *Requester {
	return &Requester{
		conn:    wire.NewConn(nc),
		pending: make(map[uint64]*eventQueue),
	}
}

// Dial connects to a query server.
func Dial(addr string) (*Requester, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return NewRequester(nc), nil
}

// Close shuts the control connection; the server cancels every query this
// requester still owns.
func (r *Requester) Close() error { return r.conn.Close() }

// RegisterUDFs announces client UDF metadata to the server catalog (the same
// frames client.Runtime.Announce sends).
func (r *Requester) RegisterUDFs(regs []*wire.RegisterUDF) error {
	for _, reg := range regs {
		if err := r.conn.Send(wire.MsgRegisterUDF, wire.EncodeRegisterUDF(reg)); err != nil {
			return err
		}
	}
	return r.conn.Send(wire.MsgEnd, wire.EncodeEnd(&wire.End{}))
}

// readLoop demultiplexes server frames to per-query channels.
func (r *Requester) readLoop() {
	for {
		msg, err := r.conn.Receive()
		if err != nil {
			// Closing the per-query queues wakes every collector; collectors
			// read the terminal error from readErr.
			r.mu.Lock()
			r.readErr = err
			pending := r.pending
			r.pending = make(map[uint64]*eventQueue)
			r.mu.Unlock()
			for _, q := range pending {
				q.close()
			}
			return
		}
		switch msg.Type {
		case wire.MsgQueryAck, wire.MsgPrepareAck:
			ack, err := wire.DecodeQueryAck(msg.Payload)
			if err != nil {
				continue
			}
			r.deliver(ack.QueryID, requesterEvent{ack: ack})
		case wire.MsgResultBatch:
			batch, err := wire.DecodeTupleBatch(msg.Payload)
			if err != nil {
				continue
			}
			r.deliver(batch.SessionID, requesterEvent{batch: batch.Tuples})
		case wire.MsgEnd:
			end, err := wire.DecodeEnd(msg.Payload)
			if err != nil {
				continue
			}
			r.deliver(end.SessionID, requesterEvent{rows: end.Rows, done: true})
		case wire.MsgError:
			e, err := wire.DecodeError(msg.Payload)
			if err != nil {
				continue
			}
			r.deliver(e.SessionID, requesterEvent{err: fmt.Errorf("service: %s", e.Message), done: true})
		case wire.MsgQueryReject:
			rej, err := wire.DecodeQueryReject(msg.Payload)
			if err != nil {
				continue
			}
			// The typed error wraps wire.ErrOverloaded / wire.ErrServerDraining,
			// so wire.Classify sees it as retryable.
			r.deliver(rej.QueryID, requesterEvent{err: rej.Err(), done: true})
		}
	}
}

func (r *Requester) deliver(id uint64, ev requesterEvent) {
	r.mu.Lock()
	q := r.pending[id]
	r.mu.Unlock()
	if q == nil {
		return
	}
	depth := int64(q.push(ev))
	for {
		hwm := r.queueHWM.Load()
		if depth <= hwm || r.queueHWM.CompareAndSwap(hwm, depth) {
			break
		}
	}
	if depth > EventQueueWarnDepth {
		r.queueHot.Add(1)
	}
}

// RemoteQuery is one in-flight query submitted through a Requester.
type RemoteQuery struct {
	r    *Requester
	id   uint64
	caps uint32
	ch   *eventQueue
}

// Submit sends a QuerySpec (its QueryID and Caps are managed by the
// requester) and waits for the server's admission ack.
func (r *Requester) Submit(spec wire.QuerySpec) (*RemoteQuery, error) {
	r.mu.Lock()
	if !r.started {
		r.started = true
		go r.readLoop()
	}
	if r.readErr != nil {
		err := r.readErr
		r.mu.Unlock()
		return nil, err
	}
	r.nextID++
	spec.QueryID = r.nextID
	spec.Caps = serverCaps
	ch := newEventQueue()
	r.pending[spec.QueryID] = ch
	r.mu.Unlock()

	payload, err := wire.EncodeQuerySpec(&spec)
	if err != nil {
		r.drop(spec.QueryID)
		return nil, err
	}
	if err := r.conn.Send(wire.MsgQuery, payload); err != nil {
		r.drop(spec.QueryID)
		return nil, err
	}
	ev, ok := ch.pop()
	if ev.err != nil {
		r.drop(spec.QueryID)
		return nil, ev.err
	}
	if !ok || ev.ack == nil {
		r.drop(spec.QueryID)
		r.mu.Lock()
		err := r.readErr
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("service: expected QUERY_ACK")
	}
	if !ev.ack.OK {
		r.drop(spec.QueryID)
		return nil, fmt.Errorf("service: query rejected: %s", ev.ack.Error)
	}
	return &RemoteQuery{r: r, id: spec.QueryID, caps: ev.ack.Caps, ch: ch}, nil
}

// SubmitText submits a textual query (see docs/QUERYLANG.md) for server-side
// parsing and planning. The spec carries the query's envelope — ClientAddr,
// MemBudget, TimeoutMillis — while its structural fields are ignored. A server
// too old to understand query text rejects the spec at decode time, so the
// submission fails cleanly rather than misbehaving.
func (r *Requester) SubmitText(text string, spec wire.QuerySpec) (*RemoteQuery, error) {
	spec.Text = text
	spec.Table = ""
	spec.Filter = nil
	spec.UDFs = nil
	spec.Pushable = nil
	spec.Project = nil
	return r.Submit(spec)
}

// RemoteStatement is a statement prepared on the server over this requester's
// connection: the tree was built (or the text compiled) and validated once,
// and each Exec ships only a statement ID plus per-execution overrides. It is
// only handed out when the server echoed CapPrepared.
type RemoteStatement struct {
	r    *Requester
	id   uint64
	caps uint32
}

// Prepare registers the spec as a server-side prepared statement. The spec's
// QueryID and Caps are managed by the requester; the resource envelope
// (ClientAddr, MemBudget, TimeoutMillis, Tenant) becomes the statement's
// template, overridable per execution. Servers that have not negotiated
// CapPrepared fail the call cleanly.
func (r *Requester) Prepare(spec wire.QuerySpec) (*RemoteStatement, error) {
	r.mu.Lock()
	if !r.started {
		r.started = true
		go r.readLoop()
	}
	if r.readErr != nil {
		err := r.readErr
		r.mu.Unlock()
		return nil, err
	}
	r.nextID++
	spec.QueryID = r.nextID
	spec.Caps = serverCaps
	ch := newEventQueue()
	r.pending[spec.QueryID] = ch
	r.mu.Unlock()
	defer r.drop(spec.QueryID)

	payload, err := wire.EncodeQuerySpec(&spec)
	if err != nil {
		return nil, err
	}
	if err := r.conn.Send(wire.MsgPrepare, payload); err != nil {
		return nil, err
	}
	ev, ok := ch.pop()
	if ev.err != nil {
		return nil, ev.err
	}
	if !ok || ev.ack == nil {
		r.mu.Lock()
		err := r.readErr
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("service: expected PREPARE_ACK")
	}
	if !ev.ack.OK {
		return nil, fmt.Errorf("service: prepare rejected: %s", ev.ack.Error)
	}
	if ev.ack.Caps&wire.CapPrepared == 0 {
		return nil, fmt.Errorf("service: server did not negotiate prepared statements")
	}
	return &RemoteStatement{r: r, id: spec.QueryID, caps: ev.ack.Caps}, nil
}

// PrepareText prepares a textual query (see docs/QUERYLANG.md) server-side.
func (r *Requester) PrepareText(text string, spec wire.QuerySpec) (*RemoteStatement, error) {
	spec.Text = text
	spec.Table = ""
	spec.Filter = nil
	spec.UDFs = nil
	spec.Pushable = nil
	spec.Project = nil
	return r.Prepare(spec)
}

// Exec starts one execution of the statement. over's StatementID and QueryID
// are managed by the requester; its remaining fields override the statement's
// template (zero values inherit). Unlike Submit there is no per-execution
// admission ack — rejections surface from Collect as typed reject errors.
func (st *RemoteStatement) Exec(over wire.ExecPrepared) (*RemoteQuery, error) {
	r := st.r
	r.mu.Lock()
	if r.readErr != nil {
		err := r.readErr
		r.mu.Unlock()
		return nil, err
	}
	r.nextID++
	over.StatementID = st.id
	over.QueryID = r.nextID
	ch := newEventQueue()
	r.pending[over.QueryID] = ch
	r.mu.Unlock()
	if err := r.conn.Send(wire.MsgExecPrepared, wire.EncodeExecPrepared(&over)); err != nil {
		r.drop(over.QueryID)
		return nil, err
	}
	return &RemoteQuery{r: r, id: over.QueryID, caps: st.caps, ch: ch}, nil
}

func (r *Requester) drop(id uint64) {
	r.mu.Lock()
	delete(r.pending, id)
	r.mu.Unlock()
}

// Cancel sends a MsgCancel — only when the server's ack granted CapCancel.
func (q *RemoteQuery) Cancel() error {
	if q.caps&wire.CapCancel == 0 {
		return fmt.Errorf("service: server did not negotiate cancellation")
	}
	return q.r.conn.Send(wire.MsgCancel, wire.EncodeCancel(&wire.Cancel{QueryID: q.id}))
}

// Collect drains the query's result stream into memory.
func (q *RemoteQuery) Collect() ([]types.Tuple, error) {
	defer q.r.drop(q.id)
	var rows []types.Tuple
	for {
		ev, ok := q.ch.pop()
		if !ok {
			break
		}
		if ev.batch != nil {
			rows = append(rows, ev.batch...)
			continue
		}
		if ev.done {
			if ev.err != nil {
				return rows, ev.err
			}
			return rows, nil
		}
	}
	// The queue was closed by a dying read loop; surface its error.
	q.r.mu.Lock()
	err := q.r.readErr
	q.r.mu.Unlock()
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return rows, err
}

// errIsCanceled reports whether a server-side error string describes a
// cancelled query (the error crosses the wire as text).
func ErrIsCanceled(err error) bool {
	return err != nil && strings.Contains(err.Error(), "context canceled")
}

// RetryPolicy governs ExecuteWithRetry: how many submit attempts a shed query
// gets, and how the waits between them are computed.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included). Values
	// < 1 select DefaultRetryAttempts.
	MaxAttempts int
	// Backoff shapes the waits between attempts; the zero value selects the
	// wire package's defaults (20ms base, 2s cap, jittered).
	Backoff wire.Backoff
}

// DefaultRetryAttempts is the attempt budget when RetryPolicy leaves it zero.
const DefaultRetryAttempts = 4

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return DefaultRetryAttempts
	}
	return p.MaxAttempts
}

// ExecuteWithRetry submits the spec and collects its rows, resubmitting under
// the policy's budget while the failure is retryable (wire.Classify): a typed
// overload or draining shed, or a tripped client-side circuit breaker.
// Resubmission is safe — a shed query never held a slot and never executed,
// so no partial effects exist to duplicate. When the server's reject carried
// a retry-after hint longer than the backoff's next delay, the hint wins.
// Fatal errors and cancellations return immediately.
func (r *Requester) ExecuteWithRetry(ctx context.Context, spec wire.QuerySpec, pol RetryPolicy) ([]types.Tuple, error) {
	attempts := pol.maxAttempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := pol.Backoff.Delay(attempt - 1)
			var re *wire.RejectError
			if errors.As(lastErr, &re) && re.RetryAfter > d {
				d = re.RetryAfter
			}
			if err := wire.SleepCtx(ctx, d); err != nil {
				return nil, err
			}
		}
		q, err := r.Submit(spec)
		if err != nil {
			if wire.Classify(err) == wire.ClassRetryable {
				lastErr = err
				continue
			}
			return nil, err
		}
		rows, err := q.Collect()
		if err == nil {
			return rows, nil
		}
		if wire.Classify(err) != wire.ClassRetryable {
			return rows, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("service: retry budget exhausted after %d attempts: %w", attempts, lastErr)
}
