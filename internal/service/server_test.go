package service

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"csq/internal/exec"
	"csq/internal/expr"
	"csq/internal/plan"
	"csq/internal/types"
	"csq/internal/wire"
)

// startServer runs a wire front-end over a fresh service on TCP loopback.
func startServer(t *testing.T, fx *serviceFixture, cfg Config) (*Server, string) {
	t.Helper()
	svc := New(fx.cat, cfg)
	srv := NewServer(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// TestServerQueryOverWire submits queries through the MsgQuery framing over
// TCP loopback — a UDF query (whose sessions dial the client runtime) and a
// pure server-side query — and checks the streamed results byte-for-byte
// against the unbudgeted in-process path.
func TestServerQueryOverWire(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	// UDF query: score over events, filtered server-side.
	filter := expr.NewBinary(expr.OpLt,
		expr.NewBoundColumnRef(0, types.KindInt),
		expr.NewConst(types.NewInt(5)))
	filterBytes, err := expr.Marshal(filter)
	if err != nil {
		t.Fatal(err)
	}
	q, err := req.Submit(wire.QuerySpec{
		Table:      "events",
		Filter:     filterBytes,
		UDFs:       []wire.UDFSpec{{Name: "score", ArgOrdinals: []int{1}}},
		ClientAddr: fx.clientAddr,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := q.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	wantTree := udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, filter, nil, nil)
	want := referenceRun(t, fx, wantTree)
	if !bytes.Equal(encodeRows(t, got), encodeRows(t, want)) {
		t.Fatalf("wire query result differs: %d rows vs %d", len(got), len(want))
	}

	// Pure server-side query on the same connection: no UDFs, no client addr.
	q2, err := req.Submit(wire.QuerySpec{Table: "dims", Project: []int{1}})
	if err != nil {
		t.Fatalf("submit server-side: %v", err)
	}
	rows, err := q2.Collect()
	if err != nil {
		t.Fatalf("collect server-side: %v", err)
	}
	if len(rows) != dimRows {
		t.Fatalf("server-side query returned %d rows, want %d", len(rows), dimRows)
	}
}

// TestServerCancelOverWire cancels a slow query with MsgCancel (after the
// ack negotiated CapCancel) and expects the stream to terminate promptly
// with a cancellation error.
func TestServerCancelOverWire(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	q, err := req.Submit(wire.QuerySpec{
		Table:      "events",
		UDFs:       []wire.UDFSpec{{Name: "slowscore", ArgOrdinals: []int{1}}},
		ClientAddr: fx.clientAddr,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if q.caps&wire.CapCancel == 0 {
		t.Fatalf("server did not negotiate CapCancel")
	}

	done := make(chan error, 1)
	var mu sync.Mutex
	var rows int
	go func() {
		got, err := q.Collect()
		mu.Lock()
		rows = len(got)
		mu.Unlock()
		done <- err
	}()
	// Give the query a moment to start streaming, then cancel.
	time.Sleep(300 * time.Millisecond)
	cancelAt := time.Now()
	if err := q.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	select {
	case err := <-done:
		if !ErrIsCanceled(err) {
			t.Fatalf("cancelled wire query returned %v, want a canceled error", err)
		}
		if d := time.Since(cancelAt); d > time.Second {
			t.Fatalf("wire cancellation took %v, want < 1s", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("cancelled wire query never terminated")
	}
	mu.Lock()
	defer mu.Unlock()
	if rows >= eventRows {
		t.Fatalf("cancelled query delivered the whole result (%d rows)", rows)
	}
}

// TestServerRegisterUDFsOverWire announces UDF metadata on the control
// connection and then uses it in a query against a catalog that had no UDFs.
func TestServerRegisterUDFsOverWire(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	if err := fx.cat.DropUDF("score"); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	if err := req.RegisterUDFs([]*wire.RegisterUDF{{
		Name: "score", ArgKinds: []types.Kind{types.KindInt}, ResultKind: types.KindFloat, ResultSize: 9,
	}}); err != nil {
		t.Fatalf("register: %v", err)
	}
	q, err := req.Submit(wire.QuerySpec{
		Table:      "events",
		UDFs:       []wire.UDFSpec{{Name: "score", ArgOrdinals: []int{1}}},
		ClientAddr: fx.clientAddr,
	})
	if err != nil {
		t.Fatalf("submit after register: %v", err)
	}
	rows, err := q.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(rows) != eventRows {
		t.Fatalf("got %d rows, want %d", len(rows), eventRows)
	}
}

// TestServerRejectsUnknownTable exercises the rejection path of the ack.
func TestServerRejectsUnknownTable(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	if _, err := req.Submit(wire.QuerySpec{Table: "no-such-table"}); err == nil {
		t.Fatalf("expected a rejection for an unknown table")
	}
}

// TestQuerySpecRoundTrip pins the MsgQuery codec.
func TestQuerySpecRoundTrip(t *testing.T) {
	spec := &wire.QuerySpec{
		QueryID:       42,
		Caps:          wire.CapCancel,
		Table:         "events",
		Filter:        []byte{1, 2, 3},
		UDFs:          []wire.UDFSpec{{Name: "score", ArgOrdinals: []int{1, 2}}},
		Pushable:      []byte{9},
		Project:       []int{0, 4},
		ClientAddr:    "127.0.0.1:9999",
		MemBudget:     1 << 20,
		TimeoutMillis: 2500,
	}
	data, err := wire.EncodeQuerySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeQuerySpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != spec.QueryID || got.Caps != spec.Caps || got.Table != spec.Table ||
		got.ClientAddr != spec.ClientAddr || got.MemBudget != spec.MemBudget ||
		got.TimeoutMillis != spec.TimeoutMillis ||
		len(got.UDFs) != 1 || got.UDFs[0].Name != "score" ||
		len(got.Project) != 2 || !bytes.Equal(got.Filter, spec.Filter) || !bytes.Equal(got.Pushable, spec.Pushable) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, spec)
	}

	ack := &wire.QueryAck{QueryID: 42, OK: true, Caps: wire.CapCancel}
	back, err := wire.DecodeQueryAck(wire.EncodeQueryAck(ack))
	if err != nil {
		t.Fatal(err)
	}
	if back.QueryID != 42 || !back.OK || back.Caps != wire.CapCancel {
		t.Fatalf("ack round trip mismatch: %+v", back)
	}

	c, err := wire.DecodeCancel(wire.EncodeCancel(&wire.Cancel{QueryID: 42}))
	if err != nil {
		t.Fatal(err)
	}
	if c.QueryID != 42 {
		t.Fatalf("cancel round trip mismatch: %+v", c)
	}
}

// TestServerRejectsDuplicateQueryID crafts two MsgQuery frames sharing one
// (peer-chosen) query ID on a raw control connection; the second must be
// rejected in its ack rather than interleaving two result streams.
func TestServerRejectsDuplicateQueryID(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	send := func() {
		t.Helper()
		spec := &wire.QuerySpec{
			QueryID:    7,
			Table:      "events",
			UDFs:       []wire.UDFSpec{{Name: "slowscore", ArgOrdinals: []int{1}}},
			ClientAddr: fx.clientAddr,
		}
		payload, err := wire.EncodeQuerySpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(wire.MsgQuery, payload); err != nil {
			t.Fatal(err)
		}
	}
	readAck := func() *wire.QueryAck {
		t.Helper()
		for {
			msg, err := conn.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if msg.Type != wire.MsgQueryAck {
				continue // result batches of the first query may interleave
			}
			ack, err := wire.DecodeQueryAck(msg.Payload)
			if err != nil {
				t.Fatal(err)
			}
			return ack
		}
	}
	send()
	if ack := readAck(); !ack.OK {
		t.Fatalf("first query rejected: %s", ack.Error)
	}
	send()
	if ack := readAck(); ack.OK {
		t.Fatalf("duplicate in-flight query ID was accepted")
	}
}

// TestServerRejectsBadSpecs covers the malformed-spec rejection paths.
func TestServerRejectsBadSpecs(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})
	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	// Unregistered UDF.
	if _, err := req.Submit(wire.QuerySpec{
		Table: "events", UDFs: []wire.UDFSpec{{Name: "nope", ArgOrdinals: []int{1}}},
	}); err == nil {
		t.Fatalf("unregistered UDF accepted")
	}
	// Garbage filter bytes.
	if _, err := req.Submit(wire.QuerySpec{Table: "events", Filter: []byte{0xff, 0xff}}); err == nil {
		t.Fatalf("garbage filter accepted")
	}
	// Budget and timeout plumbing (accept path with overrides).
	q, err := req.Submit(wire.QuerySpec{Table: "dims", MemBudget: 1 << 20, TimeoutMillis: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Collect(); err != nil {
		t.Fatal(err)
	}
}

// TestRequesterSurfacesConnectionDeath kills the control connection while a
// query is streaming; the collector must terminate with the read error
// instead of hanging on a full, never-closed channel.
func TestRequesterSurfacesConnectionDeath(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	srv, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	q, err := req.Submit(wire.QuerySpec{
		Table:      "events",
		UDFs:       []wire.UDFSpec{{Name: "slowscore", ArgOrdinals: []int{1}}},
		ClientAddr: fx.clientAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := q.Collect()
		done <- err
	}()
	time.Sleep(200 * time.Millisecond)
	srv.Close() // server side dies mid-stream
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("collector returned success after the connection died")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("collector hung after connection death")
	}
	_ = req.Close()
	// Submitting on a dead requester fails fast.
	if _, err := req.Submit(wire.QuerySpec{Table: "dims"}); err == nil {
		t.Fatalf("submit on a dead connection succeeded")
	}
}
