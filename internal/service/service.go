// Package service turns the single-query planning and execution stack into a
// governed multi-query service: it accepts concurrent queries (each a logical
// tree plus a client link), runs the plan→lower→execute pipeline for each one
// under a per-query context with deadline and cancellation, enforces a global
// admission limit, governs memory through a per-query exec.MemTracker (soft
// budget → Grace spilling in HashJoin/HashAggregate, hard limit → query
// failure), shares one cross-query plan.StatsCache so repeated queries reuse
// sampled statistics and probe-measured link observations, and exposes
// per-query lifecycle statistics.
//
// The wire front-end (Server, cmd/udfserverd) speaks the MsgQuery/MsgCancel
// framing extension on top of this.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/catalog"
	"csq/internal/exec"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/types"
	"csq/internal/wire"
)

// State is a query's lifecycle state.
type State uint8

// Query lifecycle states, in the order they normally occur.
const (
	// StateQueued: submitted, waiting for an admission slot.
	StateQueued State = iota
	// StatePlanning: holding a slot, running the plan→lower pipeline.
	StatePlanning
	// StateRunning: executing the lowered operator tree.
	StateRunning
	// StateDone: finished successfully.
	StateDone
	// StateFailed: finished with an error.
	StateFailed
	// StateCanceled: terminated by cancellation or deadline.
	StateCanceled
	// StateShed: refused by the admission controller (overload or drain)
	// without ever holding a slot; safe to retry elsewhere.
	StateShed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StatePlanning:
		return "planning"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateShed:
		return "shed"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateShed
}

// Defaults for Config fields left zero.
const (
	// DefaultMaxConcurrent is the default admission limit.
	DefaultMaxConcurrent = 8
	// DefaultKeepFinished is how many finished queries' stats are retained.
	DefaultKeepFinished = 128
)

// Config tunes the service. The zero value selects the defaults.
type Config struct {
	// MaxConcurrent is the global admission limit: at most this many queries
	// hold planning/execution slots simultaneously; the rest wait in
	// StateQueued. Values < 1 select DefaultMaxConcurrent.
	MaxConcurrent int
	// MemBudget is the default per-query soft memory budget in bytes; going
	// over it makes HashJoin/HashAggregate spill to disk. 0 means unlimited.
	MemBudget int64
	// HardMemLimit is the default per-query hard memory limit; a query whose
	// unspillable state exceeds it fails with exec.ErrMemoryLimit. 0 = none.
	HardMemLimit int64
	// DefaultTimeout bounds each query's wall-clock time when the request
	// does not set one. 0 means no deadline.
	DefaultTimeout time.Duration
	// TempDir is where spill runs are created ("" = system temp dir).
	TempDir string
	// KeepFinished bounds how many finished queries stay visible in Queries.
	// Values < 1 select DefaultKeepFinished.
	KeepFinished int
	// MaxQueued bounds how many queries may wait for an admission slot before
	// further submissions are shed as overloaded. Values < 1 select
	// DefaultMaxQueued.
	MaxQueued int
	// MaxQueueWait caps how long any query may wait for admission, on top of
	// the per-query queue-time budget derived from its deadline. 0 = no cap.
	MaxQueueWait time.Duration
	// StallTimeout enables the stuck-query watchdog: a planning or running
	// query whose progress heartbeat does not advance for this long is
	// cancelled with ErrStalled. 0 disables the watchdog.
	StallTimeout time.Duration
	// WatchdogInterval is how often the watchdog sweeps. Values <= 0 select
	// a quarter of StallTimeout.
	WatchdogInterval time.Duration
	// Planner carries base planner knobs (sample rows, sketch size, probe
	// size, session caps, session retry policy, a fixed link observation for
	// tests). The service manages StatsCache, LinkKey and MemBudget per query
	// on top of it.
	Planner plan.Config

	// Hot-query serving knobs. All three default to off so a zero Config
	// behaves exactly like the pre-caching service.

	// PlanCacheEntries, when > 0, enables the cross-query prepared-plan cache
	// with that many LRU slots: repeated queries with the same shape over
	// unchanged data skip rewrite, sampling, probing and strategy choice.
	PlanCacheEntries int
	// ResultCacheBytes, when > 0, enables the version-keyed result cache with
	// that byte budget: deterministic queries (UDF-free, or catalog-declared
	// pure UDFs only) over unchanged data are answered from memory.
	ResultCacheBytes int64
	// SharedScans, when true, coalesces concurrent identical segment decodes
	// across queries: followers attach to the leader's in-flight read instead
	// of decoding the same columnar segment independently.
	SharedScans bool
	// Tenants configures per-tenant scheduling (DRR weight, running quota).
	// Tenants absent from the map get weight 1 and no quota.
	Tenants map[string]TenantPolicy
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent < 1 {
		return DefaultMaxConcurrent
	}
	return c.MaxConcurrent
}

func (c Config) keepFinished() int {
	if c.KeepFinished < 1 {
		return DefaultKeepFinished
	}
	return c.KeepFinished
}

// Request describes one query.
type Request struct {
	// Tree is the query's logical plan. Trees without UDF applications are
	// pure server-side queries and need no link.
	Tree logical.Node
	// Link is the client link UDF applications execute over.
	Link exec.ClientLink
	// LinkKey identifies the physical link in the cross-query stats cache
	// (e.g. the client runtime's address), enabling probe reuse.
	LinkKey string
	// MemBudget overrides the service's per-query soft budget: > 0 sets a
	// budget, 0 inherits the service default, < 0 disables budgeting.
	MemBudget int64
	// Timeout overrides the service's default per-query deadline: > 0 sets
	// one, 0 inherits the default, < 0 disables it.
	Timeout time.Duration
	// OnBatch, when non-nil, streams result batches as they are produced
	// instead of accumulating rows in the result. The callback owns the
	// tuples; returning an error aborts the query.
	OnBatch func(batch []types.Tuple) error
	// Tenant names the accounting principal the query runs under; the fair
	// scheduler queues and meters per tenant. Empty selects DefaultTenant.
	Tenant string

	// stmt attaches the query to a prepared statement's plan slot; set by
	// PreparedStatement.Submit.
	stmt *PreparedStatement
}

// QueryStats is a point-in-time snapshot of one query's lifecycle.
type QueryStats struct {
	ID        uint64
	State     State
	Err       string
	Submitted time.Time
	Started   time.Time // admission granted
	Finished  time.Time
	Rows      int64
	// AdmissionWait is how long the query waited for an execution slot.
	AdmissionWait time.Duration
	// Stalled reports that the stuck-query watchdog cancelled the query.
	Stalled bool
	// Memory governance, from the query's MemTracker.
	MemPeakBytes int64
	SpillEvents  int64
	SpilledBytes int64
	// Scan aggregates the storage I/O of the query's columnar scans:
	// segments scanned and pruned, on-disk bytes read, decode time.
	Scan exec.ScanStats
	// Strategies lists the chosen strategy per UDF application.
	Strategies []string
	// SessionsPlanned lists the planned session-pool size per UDF
	// application, aligned with Strategies. Compare with
	// Faults.FinalSessions to see whether a pool degraded mid-query.
	SessionsPlanned []int
	// Faults aggregates the fault-tolerance activity of the query's
	// client-site operators: redials, failovers, replayed frames, sessions
	// lost and the pool size the query finished with.
	Faults exec.FaultStats
	// StatsFromCache reports that at least one application's sampling
	// statistics were served by the cross-query cache.
	StatsFromCache bool
	// Tenant is the accounting principal the query ran under.
	Tenant string
	// PlanFromCache reports that the whole TreePlan was reused (plan cache or
	// prepared statement) instead of planned from scratch.
	PlanFromCache bool
	// ResultFromCache reports that the result was served entirely from the
	// version-keyed result cache without planning or executing anything.
	ResultFromCache bool
}

// Result is a finished query's output.
type Result struct {
	// Rows holds the accumulated result when no OnBatch sink was set.
	Rows []types.Tuple
	// RowCount is the number of rows produced (accumulated or streamed).
	RowCount int64
	// Stats is the final lifecycle snapshot.
	Stats QueryStats
}

// ErrStalled is the cancellation cause the stuck-query watchdog records when
// it kills a query whose progress heartbeat froze for the stall window. It
// surfaces from Wait via the query's error (state StateFailed).
var ErrStalled = errors.New("service: query stalled: no progress within the stall window")

// Service runs queries.
type Service struct {
	cat   *catalog.Catalog
	cfg   Config
	cache *plan.StatsCache
	adm   *admission

	// Hot-query serving state; each is nil when its Config knob is off.
	planCache   *plan.PlanCache
	resultCache *resultCache
	scanShare   *exec.ScanShare

	nextID       atomic.Uint64
	stallCancels atomic.Int64

	wdStop chan struct{} // nil when the watchdog is disabled
	wdDone chan struct{}
	wdOnce sync.Once

	mu       sync.Mutex
	queries  map[uint64]*Query
	finished []uint64 // finished query IDs in completion order, for pruning
	draining bool
	closed   bool
}

// New builds a service over the given catalog.
func New(cat *catalog.Catalog, cfg Config) *Service {
	s := &Service{
		cat:     cat,
		cfg:     cfg,
		cache:   plan.NewStatsCache(),
		adm:     newAdmission(cfg.maxConcurrent(), cfg.MaxQueued, cfg.MaxQueueWait, cfg.Tenants),
		queries: make(map[uint64]*Query),
	}
	if cfg.PlanCacheEntries > 0 {
		s.planCache = plan.NewPlanCache(cfg.PlanCacheEntries)
	}
	if cfg.ResultCacheBytes > 0 {
		s.resultCache = newResultCache(cfg.ResultCacheBytes)
	}
	if cfg.SharedScans {
		s.scanShare = exec.NewScanShare()
	}
	if cfg.StallTimeout > 0 {
		s.wdStop = make(chan struct{})
		s.wdDone = make(chan struct{})
		go s.watchdog()
	}
	return s
}

// StatsCache exposes the cross-query statistics cache (shared by every
// query's planner).
func (s *Service) StatsCache() *plan.StatsCache { return s.cache }

// Query is the handle of one submitted query.
type Query struct {
	id          uint64
	svc         *Service
	cancelCause context.CancelCauseFunc
	cancelTimer context.CancelFunc // releases the deadline timer; nil without one
	done        chan struct{}
	prog        *exec.Progress

	// Watchdog bookkeeping, touched only by the watchdog goroutine.
	wdCount int64
	wdSince time.Time

	collect bool
	onBatch func([]types.Tuple) error

	tenant string

	mu              sync.Mutex
	state           State
	err             error
	rows            []types.Tuple
	rowCount        int64
	cacheRows       []types.Tuple // result-cache accumulation when not collecting
	accumForCache   bool
	submitted       time.Time
	started         time.Time
	finished        time.Time
	admissionWait   time.Duration
	stalled         bool
	tracker         *exec.MemTracker
	scanStats       *exec.ScanStatsRecorder
	strategies      []string
	sessionsPlanned []int
	faults          exec.FaultStats
	statsFromCache  bool
	planFromCache   bool
	resultFromCache bool
}

// ID returns the query's service-wide identifier.
func (q *Query) ID() uint64 { return q.id }

// cancelWith terminates the query's context, recording cause (nil means plain
// cancellation) so finish can classify why the query died.
func (q *Query) cancelWith(cause error) {
	q.cancelCause(cause)
	if q.cancelTimer != nil {
		q.cancelTimer()
	}
}

// Cancel aborts the query. Safe to call at any time, any number of times.
func (q *Query) Cancel() { q.cancelWith(nil) }

// Done is closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its result.
func (q *Query) Wait() (*Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	return &Result{Rows: q.rows, RowCount: q.rowCount, Stats: q.statsLocked()}, nil
}

// Stats returns a point-in-time lifecycle snapshot.
func (q *Query) Stats() QueryStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.statsLocked()
}

func (q *Query) statsLocked() QueryStats {
	st := QueryStats{
		ID:              q.id,
		State:           q.state,
		Submitted:       q.submitted,
		Started:         q.started,
		Finished:        q.finished,
		Rows:            q.rowCount,
		AdmissionWait:   q.admissionWait,
		Stalled:         q.stalled,
		Strategies:      append([]string(nil), q.strategies...),
		SessionsPlanned: append([]int(nil), q.sessionsPlanned...),
		Faults:          q.faults,
		StatsFromCache:  q.statsFromCache,
		Tenant:          q.tenant,
		PlanFromCache:   q.planFromCache,
		ResultFromCache: q.resultFromCache,
	}
	if q.err != nil {
		st.Err = q.err.Error()
	}
	if q.tracker != nil {
		st.MemPeakBytes = q.tracker.Peak()
		st.SpillEvents = q.tracker.SpillEvents()
		st.SpilledBytes = q.tracker.SpilledBytes()
	}
	st.Scan = q.scanStats.Stats()
	return st
}

// Submit registers a query and starts it asynchronously; the returned handle
// cancels, waits and reports stats. The context governs the whole query: its
// cancellation or deadline terminates planning and execution.
func (s *Service) Submit(ctx context.Context, req Request) (*Query, error) {
	if req.Tree == nil {
		return nil, fmt.Errorf("service: query has no logical tree")
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var timerCancel context.CancelFunc
	if timeout > 0 {
		ctx, timerCancel = context.WithTimeout(ctx, timeout)
	}
	qctx, cancel := context.WithCancelCause(ctx)
	q := &Query{
		id:          s.nextID.Add(1),
		svc:         s,
		cancelCause: cancel,
		cancelTimer: timerCancel,
		done:        make(chan struct{}),
		prog:        &exec.Progress{},
		collect:     req.OnBatch == nil,
		onBatch:     req.OnBatch,
		state:       StateQueued,
		submitted:   time.Now(),
	}
	q.tenant = req.Tenant
	if q.tenant == "" {
		q.tenant = DefaultTenant
	}
	// The closed/draining check and the registration share one critical
	// section, so a Submit racing Close or Shutdown either registers before
	// their snapshot (and is cancelled or awaited by it) or observes the flag
	// and is refused — a query can never start against a service that has
	// finished closing or begun draining.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		q.cancelWith(nil)
		return nil, fmt.Errorf("service: closed")
	}
	if s.draining {
		s.mu.Unlock()
		q.cancelWith(nil)
		return nil, &wire.RejectError{Reason: wire.RejectDraining}
	}
	s.queries[q.id] = q
	s.mu.Unlock()
	go q.run(qctx, req)
	return q, nil
}

// Execute submits the query and waits for its result.
func (s *Service) Execute(ctx context.Context, req Request) (*Result, error) {
	q, err := s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return q.Wait()
}

// Lookup returns a live or recently finished query handle.
func (s *Service) Lookup(id uint64) (*Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	return q, ok
}

// Queries returns lifecycle snapshots of every tracked query, oldest first.
func (s *Service) Queries() []QueryStats {
	s.mu.Lock()
	qs := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]QueryStats, len(qs))
	for i, q := range qs {
		out[i] = q.Stats()
	}
	return out
}

// Close cancels every active query and refuses new submissions. It is the
// abrupt counterpart of Shutdown: in-flight queries are cancelled, not given
// time to finish.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	active := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		active = append(active, q)
	}
	s.mu.Unlock()
	s.adm.drain()
	for _, q := range active {
		q.cancelWith(nil)
		<-q.done
	}
	s.stopWatchdog()
}

// Shutdown drains the service gracefully: new submissions and queued queries
// are shed as draining (typed, retryable elsewhere), while queries already
// holding a slot run to completion. If ctx expires first the stragglers are
// cancelled. The watchdog is stopped; the service refuses all work afterwards.
// It returns ctx's error when the drain timed out, nil on a clean drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.draining = true
	active := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		active = append(active, q)
	}
	s.mu.Unlock()
	s.adm.drain()
	var err error
	if !alreadyClosed {
		err = awaitOrCancel(ctx, active)
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stopWatchdog()
	return err
}

// awaitOrCancel waits for every query to finish; when ctx expires it cancels
// them all and still waits, so no query goroutine outlives the drain.
func awaitOrCancel(ctx context.Context, qs []*Query) error {
	var err error
	for _, q := range qs {
		if err == nil {
			select {
			case <-q.done:
				continue
			case <-ctx.Done():
				err = ctx.Err()
				for _, r := range qs {
					r.cancelWith(nil)
				}
			}
		}
		<-q.done
	}
	return err
}

// stopWatchdog stops the watchdog goroutine and waits for it. Idempotent,
// no-op when the watchdog was never started.
func (s *Service) stopWatchdog() {
	if s.wdStop == nil {
		return
	}
	s.wdOnce.Do(func() { close(s.wdStop) })
	<-s.wdDone
}

// watchdog periodically sweeps active queries for frozen progress heartbeats.
func (s *Service) watchdog() {
	defer close(s.wdDone)
	interval := s.cfg.WatchdogInterval
	if interval <= 0 {
		interval = s.cfg.StallTimeout / 4
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.wdStop:
			return
		case <-ticker.C:
			s.sweepStalled(time.Now())
		}
	}
}

// sweepStalled cancels (with ErrStalled) every planning or running query whose
// heartbeat count has not advanced for the stall window. The per-query
// bookkeeping (wdCount/wdSince) is owned by this goroutine alone.
func (s *Service) sweepStalled(now time.Time) {
	s.mu.Lock()
	active := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		active = append(active, q)
	}
	s.mu.Unlock()
	for _, q := range active {
		q.mu.Lock()
		state := q.state
		q.mu.Unlock()
		if state != StatePlanning && state != StateRunning {
			q.wdSince = time.Time{}
			continue
		}
		count := q.prog.Count()
		if q.wdSince.IsZero() || count != q.wdCount {
			q.wdCount, q.wdSince = count, now
			continue
		}
		if now.Sub(q.wdSince) >= s.cfg.StallTimeout {
			s.stallCancels.Add(1)
			q.cancelWith(ErrStalled)
			q.wdSince = now // one cancel per stall, not one per sweep
		}
	}
}

// CacheStats snapshots every cross-query cache the service runs: the
// planner's statistics cache (always on), the prepared-plan cache, the
// version-keyed result cache, and the shared-scan coalescer.
type CacheStats struct {
	// StatsHits/StatsMisses count the plan.StatsCache's sampling-pass
	// lookups (probe observations are keyed separately and not counted).
	StatsHits   int64
	StatsMisses int64
	// PlanHits/PlanMisses count whole-TreePlan reuse via the plan cache.
	PlanHits   int64
	PlanMisses int64
	// ResultHits/ResultMisses count result-cache lookups by eligible queries;
	// ResultBytes/ResultEntries describe its current occupancy.
	ResultHits    int64
	ResultMisses  int64
	ResultBytes   int64
	ResultEntries int
	// SharedSegments counts segment decodes served by attaching to a peer's
	// in-flight read; LedSegments the decodes performed on behalf of queries.
	SharedSegments int64
	LedSegments    int64
}

// ServiceStats is a point-in-time snapshot of the service's health.
type ServiceStats struct {
	// Admission snapshots the fair scheduler (slots granted, sheds by cause,
	// queue depth, wait quantiles, per-tenant shares).
	Admission AdmissionStats
	// Caches snapshots the cross-query caches' hit rates and occupancy.
	Caches CacheStats
	// StallCancels counts queries the stuck-query watchdog killed.
	StallCancels int64
	// Active counts queries in non-terminal states.
	Active int
	// Draining reports that the service is shutting down.
	Draining bool
}

// Stats returns a point-in-time snapshot of the service's health.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	active := 0
	for _, q := range s.queries {
		q.mu.Lock()
		if !q.state.Terminal() {
			active++
		}
		q.mu.Unlock()
	}
	draining := s.draining
	s.mu.Unlock()
	return ServiceStats{
		Admission: s.adm.stats(),
		Caches: CacheStats{
			StatsHits:      s.cache.Hits(),
			StatsMisses:    s.cache.Misses(),
			PlanHits:       s.planCache.Hits(),
			PlanMisses:     s.planCache.Misses(),
			ResultHits:     s.resultCache.Hits(),
			ResultMisses:   s.resultCache.Misses(),
			ResultBytes:    s.resultCache.UsedBytes(),
			ResultEntries:  s.resultCache.Len(),
			SharedSegments: s.scanShare.SharedSegments(),
			LedSegments:    s.scanShare.LedSegments(),
		},
		StallCancels: s.stallCancels.Load(),
		Active:       active,
		Draining:     draining,
	}
}

// budgetFor resolves the request's memory budget against the service default.
func (s *Service) budgetFor(req Request) (budget, hard int64) {
	budget, hard = s.cfg.MemBudget, s.cfg.HardMemLimit
	if req.MemBudget > 0 {
		budget = req.MemBudget
	} else if req.MemBudget < 0 {
		budget = 0
	}
	return budget, hard
}

// run is the query's lifecycle: admission → plan → lower → execute.
func (q *Query) run(ctx context.Context, req Request) {
	var err error
	defer func() {
		// A panicking operator (or planner) fails this query, not the
		// process: the service keeps serving its other queries.
		if rec := recover(); rec != nil {
			err = fmt.Errorf("service: query panicked: %v", rec)
		}
		q.finish(ctx, err)
	}()

	// The heartbeat counter rides the context into every operator's Open, so
	// the watchdog sees progress from whatever the query ends up running.
	ctx = exec.WithProgress(ctx, q.prog)

	// Result-cache fast path: a deterministic query over unchanged data is
	// answered from memory before it ever competes for an admission slot —
	// a hit consumes no scheduler capacity at all. The key embeds every
	// scanned table's data version and the catalog version, so a concurrent
	// write simply makes the lookup miss; a hit can never be stale.
	var resultKey string
	if rc := q.svc.resultCache; rc != nil {
		if key, ok := plan.TreeVersionKey(req.Tree, q.svc.cat); ok && plan.PureTree(req.Tree, q.svc.cat) {
			if rows, hit := rc.lookup(key); hit {
				err = q.serveCached(ctx, rows)
				return
			}
			resultKey = key
		}
	}

	// Admission: the scheduler bounds global and per-tenant concurrency and
	// queueing, dealing slots to tenants by deficit round robin and shedding
	// queries (typed, retryable) rather than queueing them past their
	// deadline's usefulness; a cancelled query leaves the queue immediately.
	release, wait, aerr := q.svc.adm.acquire(ctx, q.tenant)
	if aerr != nil {
		err = aerr
		return
	}
	defer release()

	q.mu.Lock()
	q.started = time.Now()
	q.admissionWait = wait
	q.state = StatePlanning
	q.mu.Unlock()

	budget, hard := q.svc.budgetFor(req)
	tracker := exec.NewMemTracker(budget)
	tracker.SetHardLimit(hard)
	tracker.SetTempDir(q.svc.cfg.TempDir)
	tracker.BindSpillNamespace(q.id)
	scanStats := &exec.ScanStatsRecorder{}
	q.mu.Lock()
	q.tracker = tracker
	q.scanStats = scanStats
	q.mu.Unlock()

	planner := plan.NewPlanner(req.Link)
	planner.Config = q.svc.cfg.Planner
	planner.Config.StatsCache = q.svc.cache
	planner.Config.LinkKey = req.LinkKey
	planner.Config.MemBudget = budget

	// Plan reuse, in preference order: the prepared statement's own slot
	// (works even with the global cache off), then the cross-query plan
	// cache. Both are keyed on the version-stamped tree identity plus the
	// planning configuration, so a write re-plans instead of reusing
	// decisions made over different data. A reused TreePlan is read-only and
	// NewOperator builds fresh operators, so sharing across queries is safe.
	var tp *plan.TreePlan
	var planKey string
	if req.stmt != nil || q.svc.planCache != nil {
		planKey, _ = plan.PlanCacheKey(req.Tree, q.svc.cat, planner.Config)
	}
	if planKey != "" {
		if req.stmt != nil {
			tp = req.stmt.cachedPlan(planKey)
		}
		if tp == nil {
			if cached, hit := q.svc.planCache.Lookup(planKey); hit {
				tp = cached
			}
		}
	}
	if tp != nil {
		q.mu.Lock()
		q.planFromCache = true
		q.mu.Unlock()
	} else {
		var perr error
		tp, perr = planner.PlanTree(ctx, req.Tree, q.svc.cat)
		if perr != nil {
			err = perr
			return
		}
		if planKey != "" {
			if req.stmt != nil {
				req.stmt.storePlan(planKey, tp)
			}
			q.svc.planCache.Store(planKey, tp)
		}
	}
	strategies := make([]string, 0, len(tp.Applies))
	planned := make([]int, 0, len(tp.Applies))
	fromCache := false
	for _, ap := range tp.Applies {
		strategies = append(strategies, ap.Decision.Strategy.String())
		planned = append(planned, ap.Decision.Sessions)
		fromCache = fromCache || ap.Decision.StatsFromCache
	}
	q.mu.Lock()
	q.strategies = strategies
	q.sessionsPlanned = planned
	q.statsFromCache = fromCache
	q.state = StateRunning
	q.mu.Unlock()

	op, lerr := tp.NewOperator()
	if lerr != nil {
		err = lerr
		return
	}
	q.mu.Lock()
	q.accumForCache = resultKey != "" && !q.collect
	q.mu.Unlock()
	ectx := exec.WithScanStats(exec.WithMemTracker(ctx, tracker), scanStats)
	if q.svc.scanShare != nil {
		ectx = exec.WithScanShare(ectx, q.svc.scanShare)
	}
	err = q.drive(ectx, op)

	// Store the result only if the version-stamped key still matches: a write
	// that landed anywhere between the key computation and now may or may not
	// be reflected in what the operators read, so the answer is only known to
	// correspond to the keyed versions when nothing changed underneath it.
	if err == nil && resultKey != "" {
		if key, ok := plan.TreeVersionKey(req.Tree, q.svc.cat); ok && key == resultKey {
			q.mu.Lock()
			rows := q.rows
			if !q.collect {
				rows = q.cacheRows
			}
			q.cacheRows = nil
			q.mu.Unlock()
			q.svc.resultCache.store(resultKey, rows)
		}
	}
}

// serveCached streams a cached result to the query's sink. The cached tuples
// are shared across queries and immutable; only the slice headers are copied.
func (q *Query) serveCached(ctx context.Context, rows []types.Tuple) error {
	q.mu.Lock()
	q.started = time.Now()
	q.state = StateRunning
	q.resultFromCache = true
	q.mu.Unlock()
	for off := 0; off < len(rows); off += exec.DefaultBatchSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := off + exec.DefaultBatchSize
		if end > len(rows) {
			end = len(rows)
		}
		batch := rows[off:end]
		q.mu.Lock()
		q.rowCount += int64(len(batch))
		if q.collect {
			q.rows = append(q.rows, batch...)
		}
		q.mu.Unlock()
		q.prog.Tick()
		if q.onBatch != nil {
			if err := q.onBatch(batch); err != nil {
				return fmt.Errorf("service: result sink: %w", err)
			}
		}
	}
	return nil
}

// drive executes the operator tree, streaming or accumulating batches. The
// operator is closed exactly once on every path (including panics unwinding
// through here), and its fault-tolerance counters are snapshotted after the
// close so QueryStats reports redials, failovers and pool degradation.
func (q *Query) drive(ctx context.Context, op exec.Operator) error {
	closed := false
	closeOp := func() error {
		if closed {
			return nil
		}
		closed = true
		cerr := op.Close()
		faults := exec.FaultStatsOf(op)
		q.mu.Lock()
		q.faults = faults
		q.mu.Unlock()
		return cerr
	}
	defer func() { _ = closeOp() }()
	if err := op.Open(ctx); err != nil {
		return err
	}
	batch := make([]types.Tuple, exec.DefaultBatchSize)
	for {
		n, err := op.NextBatch(batch)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		q.mu.Lock()
		q.rowCount += int64(n)
		if q.collect {
			q.rows = append(q.rows, batch[:n]...)
		}
		if q.accumForCache {
			// Streaming queries eligible for the result cache also retain the
			// rows (tuples are never recycled by the engine, so retention is
			// a slice append, not a deep copy).
			q.cacheRows = append(q.cacheRows, batch[:n]...)
		}
		q.mu.Unlock()
		if q.onBatch != nil {
			if err := q.onBatch(batch[:n]); err != nil {
				return fmt.Errorf("service: result sink: %w", err)
			}
		}
	}
	return closeOp()
}

// finish records the terminal state and releases the handle's bookkeeping.
func (q *Query) finish(ctx context.Context, err error) {
	// A context that ended takes over the error classification: whatever
	// low-level failure the teardown surfaced (a slammed connection deadline,
	// a torn-down session), the query was cancelled, timed out or stall-killed,
	// and it reports that, uniformly, as the cancellation cause — which
	// preserves the reason (ErrStalled from the watchdog, DeadlineExceeded
	// from a timeout, Canceled from a plain cancel). A query that completed
	// cleanly before the context ended keeps its success.
	if cerr := ctx.Err(); cerr != nil && err != nil {
		err = context.Cause(ctx)
	}
	var reject *wire.RejectError
	q.mu.Lock()
	q.err = err
	q.finished = time.Now()
	switch {
	case err == nil:
		q.state = StateDone
	case errors.As(err, &reject):
		q.state = StateShed
	case errors.Is(err, ErrStalled):
		q.state = StateFailed
		q.stalled = true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		q.state = StateCanceled
	default:
		q.state = StateFailed
	}
	tracker := q.tracker
	q.mu.Unlock()
	// Whatever retained spill runs the query's namespace still holds (a
	// failed query's half-written partitions) go with it.
	tracker.CleanupSpill()
	q.cancelWith(nil) // release the context's resources
	close(q.done)
	q.svc.retire(q)
}

// retire prunes old finished queries beyond the configured retention.
func (s *Service) retire(q *Query) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, q.id)
	keep := s.cfg.keepFinished()
	for len(s.finished) > keep {
		victim := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.queries, victim)
	}
}
