// Package service turns the single-query planning and execution stack into a
// governed multi-query service: it accepts concurrent queries (each a logical
// tree plus a client link), runs the plan→lower→execute pipeline for each one
// under a per-query context with deadline and cancellation, enforces a global
// admission limit, governs memory through a per-query exec.MemTracker (soft
// budget → Grace spilling in HashJoin/HashAggregate, hard limit → query
// failure), shares one cross-query plan.StatsCache so repeated queries reuse
// sampled statistics and probe-measured link observations, and exposes
// per-query lifecycle statistics.
//
// The wire front-end (Server, cmd/udfserverd) speaks the MsgQuery/MsgCancel
// framing extension on top of this.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/catalog"
	"csq/internal/exec"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/types"
)

// State is a query's lifecycle state.
type State uint8

// Query lifecycle states, in the order they normally occur.
const (
	// StateQueued: submitted, waiting for an admission slot.
	StateQueued State = iota
	// StatePlanning: holding a slot, running the plan→lower pipeline.
	StatePlanning
	// StateRunning: executing the lowered operator tree.
	StateRunning
	// StateDone: finished successfully.
	StateDone
	// StateFailed: finished with an error.
	StateFailed
	// StateCanceled: terminated by cancellation or deadline.
	StateCanceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StatePlanning:
		return "planning"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Defaults for Config fields left zero.
const (
	// DefaultMaxConcurrent is the default admission limit.
	DefaultMaxConcurrent = 8
	// DefaultKeepFinished is how many finished queries' stats are retained.
	DefaultKeepFinished = 128
)

// Config tunes the service. The zero value selects the defaults.
type Config struct {
	// MaxConcurrent is the global admission limit: at most this many queries
	// hold planning/execution slots simultaneously; the rest wait in
	// StateQueued. Values < 1 select DefaultMaxConcurrent.
	MaxConcurrent int
	// MemBudget is the default per-query soft memory budget in bytes; going
	// over it makes HashJoin/HashAggregate spill to disk. 0 means unlimited.
	MemBudget int64
	// HardMemLimit is the default per-query hard memory limit; a query whose
	// unspillable state exceeds it fails with exec.ErrMemoryLimit. 0 = none.
	HardMemLimit int64
	// DefaultTimeout bounds each query's wall-clock time when the request
	// does not set one. 0 means no deadline.
	DefaultTimeout time.Duration
	// TempDir is where spill runs are created ("" = system temp dir).
	TempDir string
	// KeepFinished bounds how many finished queries stay visible in Queries.
	// Values < 1 select DefaultKeepFinished.
	KeepFinished int
	// Planner carries base planner knobs (sample rows, sketch size, probe
	// size, session caps, session retry policy, a fixed link observation for
	// tests). The service manages StatsCache, LinkKey and MemBudget per query
	// on top of it.
	Planner plan.Config
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent < 1 {
		return DefaultMaxConcurrent
	}
	return c.MaxConcurrent
}

func (c Config) keepFinished() int {
	if c.KeepFinished < 1 {
		return DefaultKeepFinished
	}
	return c.KeepFinished
}

// Request describes one query.
type Request struct {
	// Tree is the query's logical plan. Trees without UDF applications are
	// pure server-side queries and need no link.
	Tree logical.Node
	// Link is the client link UDF applications execute over.
	Link exec.ClientLink
	// LinkKey identifies the physical link in the cross-query stats cache
	// (e.g. the client runtime's address), enabling probe reuse.
	LinkKey string
	// MemBudget overrides the service's per-query soft budget: > 0 sets a
	// budget, 0 inherits the service default, < 0 disables budgeting.
	MemBudget int64
	// Timeout overrides the service's default per-query deadline: > 0 sets
	// one, 0 inherits the default, < 0 disables it.
	Timeout time.Duration
	// OnBatch, when non-nil, streams result batches as they are produced
	// instead of accumulating rows in the result. The callback owns the
	// tuples; returning an error aborts the query.
	OnBatch func(batch []types.Tuple) error
}

// QueryStats is a point-in-time snapshot of one query's lifecycle.
type QueryStats struct {
	ID        uint64
	State     State
	Err       string
	Submitted time.Time
	Started   time.Time // admission granted
	Finished  time.Time
	Rows      int64
	// Memory governance, from the query's MemTracker.
	MemPeakBytes int64
	SpillEvents  int64
	SpilledBytes int64
	// Strategies lists the chosen strategy per UDF application.
	Strategies []string
	// SessionsPlanned lists the planned session-pool size per UDF
	// application, aligned with Strategies. Compare with
	// Faults.FinalSessions to see whether a pool degraded mid-query.
	SessionsPlanned []int
	// Faults aggregates the fault-tolerance activity of the query's
	// client-site operators: redials, failovers, replayed frames, sessions
	// lost and the pool size the query finished with.
	Faults exec.FaultStats
	// StatsFromCache reports that at least one application's sampling
	// statistics were served by the cross-query cache.
	StatsFromCache bool
}

// Result is a finished query's output.
type Result struct {
	// Rows holds the accumulated result when no OnBatch sink was set.
	Rows []types.Tuple
	// RowCount is the number of rows produced (accumulated or streamed).
	RowCount int64
	// Stats is the final lifecycle snapshot.
	Stats QueryStats
}

// Service runs queries.
type Service struct {
	cat   *catalog.Catalog
	cfg   Config
	cache *plan.StatsCache
	sem   chan struct{}

	nextID atomic.Uint64

	mu       sync.Mutex
	queries  map[uint64]*Query
	finished []uint64 // finished query IDs in completion order, for pruning
	closed   bool
}

// New builds a service over the given catalog.
func New(cat *catalog.Catalog, cfg Config) *Service {
	return &Service{
		cat:     cat,
		cfg:     cfg,
		cache:   plan.NewStatsCache(),
		sem:     make(chan struct{}, cfg.maxConcurrent()),
		queries: make(map[uint64]*Query),
	}
}

// StatsCache exposes the cross-query statistics cache (shared by every
// query's planner).
func (s *Service) StatsCache() *plan.StatsCache { return s.cache }

// Query is the handle of one submitted query.
type Query struct {
	id     uint64
	svc    *Service
	cancel context.CancelFunc
	done   chan struct{}

	collect bool
	onBatch func([]types.Tuple) error

	mu              sync.Mutex
	state           State
	err             error
	rows            []types.Tuple
	rowCount        int64
	submitted       time.Time
	started         time.Time
	finished        time.Time
	tracker         *exec.MemTracker
	strategies      []string
	sessionsPlanned []int
	faults          exec.FaultStats
	statsFromCache  bool
}

// ID returns the query's service-wide identifier.
func (q *Query) ID() uint64 { return q.id }

// Cancel aborts the query. Safe to call at any time, any number of times.
func (q *Query) Cancel() { q.cancel() }

// Done is closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes and returns its result.
func (q *Query) Wait() (*Result, error) {
	<-q.done
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return nil, q.err
	}
	return &Result{Rows: q.rows, RowCount: q.rowCount, Stats: q.statsLocked()}, nil
}

// Stats returns a point-in-time lifecycle snapshot.
func (q *Query) Stats() QueryStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.statsLocked()
}

func (q *Query) statsLocked() QueryStats {
	st := QueryStats{
		ID:              q.id,
		State:           q.state,
		Submitted:       q.submitted,
		Started:         q.started,
		Finished:        q.finished,
		Rows:            q.rowCount,
		Strategies:      append([]string(nil), q.strategies...),
		SessionsPlanned: append([]int(nil), q.sessionsPlanned...),
		Faults:          q.faults,
		StatsFromCache:  q.statsFromCache,
	}
	if q.err != nil {
		st.Err = q.err.Error()
	}
	if q.tracker != nil {
		st.MemPeakBytes = q.tracker.Peak()
		st.SpillEvents = q.tracker.SpillEvents()
		st.SpilledBytes = q.tracker.SpilledBytes()
	}
	return st
}

// Submit registers a query and starts it asynchronously; the returned handle
// cancels, waits and reports stats. The context governs the whole query: its
// cancellation or deadline terminates planning and execution.
func (s *Service) Submit(ctx context.Context, req Request) (*Query, error) {
	if req.Tree == nil {
		return nil, fmt.Errorf("service: query has no logical tree")
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		qctx, cancel = context.WithCancel(ctx)
	}
	q := &Query{
		id:        s.nextID.Add(1),
		svc:       s,
		cancel:    cancel,
		done:      make(chan struct{}),
		collect:   req.OnBatch == nil,
		onBatch:   req.OnBatch,
		state:     StateQueued,
		submitted: time.Now(),
	}
	// The closed check and the registration share one critical section, so a
	// Submit racing Close either registers before Close's snapshot (and is
	// cancelled and awaited by it) or observes closed and is refused — a
	// query can never start against a service that has finished closing.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("service: closed")
	}
	s.queries[q.id] = q
	s.mu.Unlock()
	go q.run(qctx, req)
	return q, nil
}

// Execute submits the query and waits for its result.
func (s *Service) Execute(ctx context.Context, req Request) (*Result, error) {
	q, err := s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return q.Wait()
}

// Lookup returns a live or recently finished query handle.
func (s *Service) Lookup(id uint64) (*Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	return q, ok
}

// Queries returns lifecycle snapshots of every tracked query, oldest first.
func (s *Service) Queries() []QueryStats {
	s.mu.Lock()
	qs := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]QueryStats, len(qs))
	for i, q := range qs {
		out[i] = q.Stats()
	}
	return out
}

// Close cancels every active query and refuses new submissions.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	active := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		active = append(active, q)
	}
	s.mu.Unlock()
	for _, q := range active {
		q.cancel()
		<-q.done
	}
}

// budgetFor resolves the request's memory budget against the service default.
func (s *Service) budgetFor(req Request) (budget, hard int64) {
	budget, hard = s.cfg.MemBudget, s.cfg.HardMemLimit
	if req.MemBudget > 0 {
		budget = req.MemBudget
	} else if req.MemBudget < 0 {
		budget = 0
	}
	return budget, hard
}

// run is the query's lifecycle: admission → plan → lower → execute.
func (q *Query) run(ctx context.Context, req Request) {
	var err error
	defer func() {
		// A panicking operator (or planner) fails this query, not the
		// process: the service keeps serving its other queries.
		if rec := recover(); rec != nil {
			err = fmt.Errorf("service: query panicked: %v", rec)
		}
		q.finish(ctx, err)
	}()

	// Admission: the global limit bounds how many queries plan and execute
	// concurrently; a cancelled query leaves the queue immediately.
	select {
	case q.svc.sem <- struct{}{}:
	case <-ctx.Done():
		err = ctx.Err()
		return
	}
	defer func() { <-q.svc.sem }()

	q.mu.Lock()
	q.started = time.Now()
	q.state = StatePlanning
	q.mu.Unlock()

	budget, hard := q.svc.budgetFor(req)
	tracker := exec.NewMemTracker(budget)
	tracker.SetHardLimit(hard)
	tracker.SetTempDir(q.svc.cfg.TempDir)
	q.mu.Lock()
	q.tracker = tracker
	q.mu.Unlock()

	planner := plan.NewPlanner(req.Link)
	planner.Config = q.svc.cfg.Planner
	planner.Config.StatsCache = q.svc.cache
	planner.Config.LinkKey = req.LinkKey
	planner.Config.MemBudget = budget

	tp, perr := planner.PlanTree(ctx, req.Tree, q.svc.cat)
	if perr != nil {
		err = perr
		return
	}
	strategies := make([]string, 0, len(tp.Applies))
	planned := make([]int, 0, len(tp.Applies))
	fromCache := false
	for _, ap := range tp.Applies {
		strategies = append(strategies, ap.Decision.Strategy.String())
		planned = append(planned, ap.Decision.Sessions)
		fromCache = fromCache || ap.Decision.StatsFromCache
	}
	q.mu.Lock()
	q.strategies = strategies
	q.sessionsPlanned = planned
	q.statsFromCache = fromCache
	q.state = StateRunning
	q.mu.Unlock()

	op, lerr := tp.NewOperator()
	if lerr != nil {
		err = lerr
		return
	}
	err = q.drive(exec.WithMemTracker(ctx, tracker), op)
}

// drive executes the operator tree, streaming or accumulating batches. The
// operator is closed exactly once on every path (including panics unwinding
// through here), and its fault-tolerance counters are snapshotted after the
// close so QueryStats reports redials, failovers and pool degradation.
func (q *Query) drive(ctx context.Context, op exec.Operator) error {
	closed := false
	closeOp := func() error {
		if closed {
			return nil
		}
		closed = true
		cerr := op.Close()
		faults := exec.FaultStatsOf(op)
		q.mu.Lock()
		q.faults = faults
		q.mu.Unlock()
		return cerr
	}
	defer func() { _ = closeOp() }()
	if err := op.Open(ctx); err != nil {
		return err
	}
	batch := make([]types.Tuple, exec.DefaultBatchSize)
	for {
		n, err := op.NextBatch(batch)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		q.mu.Lock()
		q.rowCount += int64(n)
		if q.collect {
			q.rows = append(q.rows, batch[:n]...)
		}
		q.mu.Unlock()
		if q.onBatch != nil {
			if err := q.onBatch(batch[:n]); err != nil {
				return fmt.Errorf("service: result sink: %w", err)
			}
		}
	}
	return closeOp()
}

// finish records the terminal state and releases the handle's bookkeeping.
func (q *Query) finish(ctx context.Context, err error) {
	// A context that ended takes over the error classification: whatever
	// low-level failure the teardown surfaced (a slammed connection deadline,
	// a torn-down session), the query was cancelled or timed out, and it
	// reports that, uniformly, as the context error. A query that completed
	// cleanly before the context ended keeps its success.
	if cerr := ctx.Err(); cerr != nil && err != nil {
		err = cerr
	}
	q.mu.Lock()
	q.err = err
	q.finished = time.Now()
	switch {
	case err == nil:
		q.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		q.state = StateCanceled
	default:
		q.state = StateFailed
	}
	q.mu.Unlock()
	q.cancel() // release the context's resources
	close(q.done)
	q.svc.retire(q)
}

// retire prunes old finished queries beyond the configured retention.
func (s *Service) retire(q *Query) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, q.id)
	keep := s.cfg.keepFinished()
	for len(s.finished) > keep {
		victim := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.queries, victim)
	}
}
