package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"csq/internal/catalog"
	"csq/internal/client"
	"csq/internal/exec"
	"csq/internal/expr"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/storage"
	"csq/internal/types"
	"csq/internal/wire"
)

// ---- fixture -------------------------------------------------------------

const (
	eventRows = 6000
	eventKeys = 2000
	dimRows   = 400
)

func eventsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "GroupID", Kind: types.KindInt},
		types.Column{Name: "Key", Kind: types.KindInt},
		types.Column{Name: "Payload", Kind: types.KindString},
		types.Column{Name: "Val", Kind: types.KindFloat},
	)
}

func dimsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "Key", Kind: types.KindInt},
		types.Column{Name: "Label", Kind: types.KindString},
	)
}

// serviceFixture is everything one acceptance test run needs: a catalog with
// two heap tables, a client UDF runtime listening on TCP loopback, and the
// runtime's address for DialLinks.
type serviceFixture struct {
	cat        *catalog.Catalog
	clientAddr string
	runtime    *client.Runtime
	cleanup    func()
}

func newServiceFixture(t testing.TB) *serviceFixture {
	t.Helper()
	cat := catalog.New()

	events, err := storage.NewHeapTable("events", eventsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < eventRows; i++ {
		if err := events.Insert(types.NewTuple(
			types.NewInt(int64(i%17)),
			types.NewInt(int64((i*7)%eventKeys)),
			types.NewString(fmt.Sprintf("event-payload-%05d", i)),
			types.NewFloat(float64(i%1000)/3),
		)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(&catalog.Table{Name: "events", Schema: eventsSchema(), Stats: events.Stats(), Data: events}); err != nil {
		t.Fatal(err)
	}

	dims, err := storage.NewHeapTable("dims", dimsSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dimRows; i++ {
		if err := dims.Insert(types.NewTuple(
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("dim-%04d", i)),
		)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.AddTable(&catalog.Table{Name: "dims", Schema: dimsSchema(), Stats: dims.Stats(), Data: dims}); err != nil {
		t.Fatal(err)
	}

	rt := client.NewRuntime()
	mustRegister := func(f *client.Func) {
		t.Helper()
		if err := rt.Register(f); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(&client.Func{
		Name: "score", ArgKinds: []types.Kind{types.KindInt}, ResultKind: types.KindFloat, ResultSize: 9,
		Body: func(args []types.Value) (types.Value, error) {
			k, err := args[0].Int()
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat(float64(k)*1.5 + 0.25), nil
		},
	})
	mustRegister(&client.Func{
		Name: "qualify", ArgKinds: []types.Kind{types.KindInt}, ResultKind: types.KindBool, ResultSize: 2, Selectivity: 0.5,
		Body: func(args []types.Value) (types.Value, error) {
			k, err := args[0].Int()
			if err != nil {
				return types.Value{}, err
			}
			return types.NewBool(k%2 == 0), nil
		},
	})
	mustRegister(&client.Func{
		Name: "slowscore", ArgKinds: []types.Kind{types.KindInt}, ResultKind: types.KindFloat, ResultSize: 9,
		Body: func(args []types.Value) (types.Value, error) {
			time.Sleep(2 * time.Millisecond)
			k, err := args[0].Int()
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat(float64(k)), nil
		},
	})
	for _, f := range rt.Functions() {
		if _, err := cat.RegisterClientUDF(&wire.RegisterUDF{
			Name:        f.Name,
			ArgKinds:    f.ArgKinds,
			ResultKind:  f.ResultKind,
			ResultSize:  f.ResultSize,
			Selectivity: f.Selectivity,
		}); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rt.ServeListener(ln) }()

	return &serviceFixture{
		cat:        cat,
		clientAddr: ln.Addr().String(),
		runtime:    rt,
		cleanup:    func() { _ = ln.Close() },
	}
}

// fixedLink keeps planning deterministic and probe-free in tests.
func fixedLink() *exec.LinkObservation {
	return &exec.LinkObservation{DownBytesPerSec: 1 << 22, UpBytesPerSec: 1 << 22, Asymmetry: 1, RTT: time.Millisecond}
}

// joinAggTree builds the memory-hungry server-side query: a join of events
// against dims with an aggregation over the join output — the shape whose
// hash-join build (~events) and group table (~eventKeys groups) both blow a
// small per-query budget.
func joinAggTree(t testing.TB, cat *catalog.Catalog, groupOrdinal int) logical.Node {
	t.Helper()
	dimsScan, err := logical.NewScanByName(cat, "dims", "")
	if err != nil {
		t.Fatal(err)
	}
	eventsScan, err := logical.NewScanByName(cat, "events", "")
	if err != nil {
		t.Fatal(err)
	}
	join, err := logical.NewJoin(dimsScan, eventsScan, []int{0}, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Join schema: 0 dims.Key, 1 dims.Label, 2 GroupID, 3 Key, 4 Payload, 5 Val.
	agg, err := logical.NewAggregate(join, []int{groupOrdinal}, []exec.Aggregate{
		{Func: exec.AggCount, Ordinal: -1, Name: "n"},
		{Func: exec.AggSum, Ordinal: 5, Name: "sum_val"},
		{Func: exec.AggMax, Ordinal: 4, Name: "max_payload"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// udfQueryTree builds a client-site UDF query over events.
func udfQueryTree(t testing.TB, fx *serviceFixture, udfs []exec.UDFBinding, filter, pushable expr.Expr, project []int) logical.Node {
	t.Helper()
	scan, err := logical.NewScanByName(fx.cat, "events", "")
	if err != nil {
		t.Fatal(err)
	}
	q := plan.Query{Source: scan, UDFs: udfs, ServerFilter: filter, Pushable: pushable, Project: project, Catalog: fx.cat}
	tree, err := q.Logical()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func scoreBinding() exec.UDFBinding {
	return exec.UDFBinding{Name: "score", ArgOrdinals: []int{1}, ResultKind: types.KindFloat}
}

func qualifyBinding() exec.UDFBinding {
	return exec.UDFBinding{Name: "qualify", ArgOrdinals: []int{1}, ResultKind: types.KindBool}
}

// referenceRun executes a tree through the unbudgeted single-query path: a
// fresh planner (no stats cache, no budget), a fresh operator tree, plain
// Collect with no memory tracker.
func referenceRun(t testing.TB, fx *serviceFixture, tree logical.Node) []types.Tuple {
	t.Helper()
	planner := plan.NewPlanner(&exec.DialLink{Addr: fx.clientAddr})
	planner.Config.Link = fixedLink()
	tp, err := planner.PlanTree(context.Background(), tree, fx.cat)
	if err != nil {
		t.Fatalf("reference plan: %v", err)
	}
	op, err := tp.NewOperator()
	if err != nil {
		t.Fatalf("reference lower: %v", err)
	}
	rows, err := exec.Collect(context.Background(), op)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return rows
}

func encodeRows(t testing.TB, rows []types.Tuple) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, r := range rows {
		buf, err = types.EncodeTuple(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// ---- the acceptance test -------------------------------------------------

// TestServiceConcurrentGovernedRuntime is the acceptance test of the
// governed multi-query runtime: ≥ 8 concurrent queries through one Service
// whose UDF sessions run over TCP loopback, under a per-query memory budget
// that forces both HashJoin and HashAggregate spilling on the heavy queries,
// with one query cancelled mid-stream. It verifies byte-identical results
// against the unbudgeted single-query path, prompt (< 1s) context.Canceled
// on the cancelled query, and zero leaked goroutines.
func TestServiceConcurrentGovernedRuntime(t *testing.T) {
	runtime.Gosched()
	baseline := runtime.NumGoroutine()

	fx := newServiceFixture(t)
	defer fx.cleanup()

	svc := New(fx.cat, Config{
		MaxConcurrent: 4,        // below the query count: admission is exercised
		MemBudget:     48 << 10, // small enough that join build and group table spill
		Planner:       plan.Config{Link: fixedLink()},
	})

	// The workload: 8 concurrent queries — two spilling join+aggregate
	// shapes, semi-join and client-join UDF queries (with repeats so the
	// stats cache gets hits), plus one long-running UDF query that is
	// cancelled mid-stream.
	filter := expr.NewBinary(expr.OpLt,
		expr.NewBoundColumnRef(0, types.KindInt),
		expr.NewConst(types.NewInt(9)))
	pushable := expr.NewBoundColumnRef(5, types.KindBool) // extended ordinal of qualify
	type namedQuery struct {
		name      string
		tree      logical.Node
		udf       bool
		wantSpill bool
	}
	queries := []namedQuery{
		{name: "join-agg-by-key", tree: joinAggTree(t, fx.cat, 3), wantSpill: true},
		{name: "join-agg-by-payload", tree: joinAggTree(t, fx.cat, 4), wantSpill: true},
		{name: "score-full", tree: udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, nil, nil, nil), udf: true},
		{name: "score-full-repeat", tree: udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, nil, nil, nil), udf: true},
		{name: "score-filtered", tree: udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding()}, filter, nil, nil), udf: true},
		{name: "qualify-pushable", tree: udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding(), qualifyBinding()}, nil, pushable, []int{0, 1, 4}), udf: true},
		{name: "qualify-pushable-repeat", tree: udfQueryTree(t, fx, []exec.UDFBinding{scoreBinding(), qualifyBinding()}, nil, pushable, []int{0, 1, 4}), udf: true},
		{name: "join-agg-small-groups", tree: joinAggTree(t, fx.cat, 2), wantSpill: false},
	}

	// Reference results from the unbudgeted single-query path, computed
	// before the concurrent run.
	want := make(map[string][]byte, len(queries))
	for _, q := range queries {
		want[q.name] = encodeRows(t, referenceRun(t, fx, q.tree))
	}

	// Launch everything concurrently, including the to-be-cancelled query.
	slowTree := udfQueryTree(t, fx, []exec.UDFBinding{{Name: "slowscore", ArgOrdinals: []int{1}, ResultKind: types.KindFloat}}, nil, nil, nil)
	firstBatch := make(chan struct{})
	var firstBatchOnce sync.Once
	slowQ, err := svc.Submit(context.Background(), Request{
		Tree:    slowTree,
		Link:    &exec.DialLink{Addr: fx.clientAddr},
		LinkKey: fx.clientAddr,
		OnBatch: func(batch []types.Tuple) error {
			firstBatchOnce.Do(func() { close(firstBatch) })
			return nil
		},
	})
	if err != nil {
		t.Fatalf("submit slow query: %v", err)
	}

	results := make(map[string]*Result, len(queries))
	errs := make(map[string]error, len(queries))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q namedQuery) {
			defer wg.Done()
			req := Request{Tree: q.tree}
			if q.udf {
				req.Link = &exec.DialLink{Addr: fx.clientAddr}
				req.LinkKey = fx.clientAddr
			}
			res, err := svc.Execute(context.Background(), req)
			mu.Lock()
			results[q.name], errs[q.name] = res, err
			mu.Unlock()
		}(q)
	}

	// Cancel the slow query as soon as it has demonstrably started
	// streaming results.
	select {
	case <-firstBatch:
	case <-time.After(30 * time.Second):
		t.Fatalf("slow query produced no rows within 30s")
	}
	cancelAt := time.Now()
	slowQ.Cancel()
	if _, err := slowQ.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	if d := time.Since(cancelAt); d > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", d)
	}
	if st := slowQ.Stats(); st.State != StateCanceled {
		t.Fatalf("cancelled query state = %s, want canceled", st.State)
	}

	wg.Wait()

	// Every other query finished with byte-identical results.
	for _, q := range queries {
		if errs[q.name] != nil {
			t.Fatalf("query %s failed: %v", q.name, errs[q.name])
		}
		got := encodeRows(t, results[q.name].Rows)
		if !bytes.Equal(got, want[q.name]) {
			t.Fatalf("query %s: governed result differs from unbudgeted reference (%d vs %d rows)",
				q.name, len(results[q.name].Rows), results[q.name].Stats.Rows)
		}
	}

	// The budget forced spilling on the heavy queries.
	for _, q := range queries {
		st := results[q.name].Stats
		if q.wantSpill && st.SpillEvents == 0 {
			t.Fatalf("query %s: expected spilling under a %dB budget (mem peak %dB)",
				q.name, svc.cfg.MemBudget, st.MemPeakBytes)
		}
		if st.State != StateDone {
			t.Fatalf("query %s state = %s, want done", q.name, st.State)
		}
	}

	// Repeated queries over unchanged tables hit the cross-query stats cache.
	if svc.StatsCache().Hits() == 0 {
		t.Fatalf("no cross-query stats-cache hits across repeated queries")
	}
	foundCached := false
	for _, q := range queries {
		if results[q.name].Stats.StatsFromCache {
			foundCached = true
		}
	}
	if !foundCached {
		t.Fatalf("no query reported cached planning statistics")
	}

	// Lifecycle stats are visible for every query.
	stats := svc.Queries()
	if len(stats) < len(queries)+1 {
		t.Fatalf("service tracks %d queries, want at least %d", len(stats), len(queries)+1)
	}
	for _, st := range stats {
		if !st.State.Terminal() {
			t.Fatalf("query %d still %s after completion", st.ID, st.State)
		}
	}

	// No goroutines may outlive the service.
	svc.Close()
	fx.cleanup()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d vs baseline %d\n%s", runtime.NumGoroutine(), baseline, filterStacks(string(buf)))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func filterStacks(stack string) string {
	var keep []string
	for _, g := range strings.Split(stack, "\n\n") {
		if strings.Contains(g, "csq/internal") && !strings.Contains(g, "service_test") {
			keep = append(keep, g)
		}
	}
	return strings.Join(keep, "\n\n")
}

// TestServiceAdmissionLimit saturates the admission limit with slow queries
// and verifies that surplus queries wait in StateQueued (and that a queued
// query can be cancelled before ever running).
func TestServiceAdmissionLimit(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{
		MaxConcurrent: 1,
		Planner:       plan.Config{Link: fixedLink()},
	})
	defer svc.Close()

	slowTree := udfQueryTree(t, fx, []exec.UDFBinding{{Name: "slowscore", ArgOrdinals: []int{1}, ResultKind: types.KindFloat}}, nil, nil, nil)
	started := make(chan struct{})
	var once sync.Once
	q1, err := svc.Submit(context.Background(), Request{
		Tree: slowTree, Link: &exec.DialLink{Addr: fx.clientAddr},
		OnBatch: func([]types.Tuple) error { once.Do(func() { close(started) }); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	q2, err := svc.Submit(context.Background(), Request{Tree: joinAggTree(t, fx.cat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if st := q2.Stats(); st.State != StateQueued {
		t.Fatalf("second query state = %s while the slot is held, want queued", st.State)
	}
	q2.Cancel()
	if _, err := q2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query cancel returned %v", err)
	}
	q1.Cancel()
	if _, err := q1.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("running query cancel returned %v", err)
	}
}

// TestServiceQueryTimeout verifies the per-query deadline terminates a query
// with context.DeadlineExceeded.
func TestServiceQueryTimeout(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{Planner: plan.Config{Link: fixedLink()}})
	defer svc.Close()

	slowTree := udfQueryTree(t, fx, []exec.UDFBinding{{Name: "slowscore", ArgOrdinals: []int{1}, ResultKind: types.KindFloat}}, nil, nil, nil)
	start := time.Now()
	_, err := svc.Execute(context.Background(), Request{
		Tree: slowTree, Link: &exec.DialLink{Addr: fx.clientAddr},
		Timeout: 300 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out query returned %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", d)
	}
}

// TestServiceHandlesAndStates covers the small lifecycle surfaces: state
// strings, handle accessors, Lookup, and finished-query pruning.
func TestServiceHandlesAndStates(t *testing.T) {
	for s, want := range map[State]string{
		StateQueued: "queued", StatePlanning: "planning", StateRunning: "running",
		StateDone: "done", StateFailed: "failed", StateCanceled: "canceled", State(99): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if StateRunning.Terminal() || !StateDone.Terminal() {
		t.Fatalf("Terminal misclassifies states")
	}

	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{
		KeepFinished: 2,
		Planner:      plan.Config{Link: fixedLink()},
	})
	defer svc.Close()

	var handles []*Query
	for i := 0; i < 4; i++ {
		q, err := svc.Submit(context.Background(), Request{Tree: joinAggTree(t, fx.cat, 2)})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, q)
		if _, err := q.Wait(); err != nil {
			t.Fatal(err)
		}
		<-q.Done()
	}
	last := handles[len(handles)-1]
	if last.ID() == 0 {
		t.Fatalf("query ID must be non-zero")
	}
	if _, ok := svc.Lookup(last.ID()); !ok {
		t.Fatalf("recent query not visible in Lookup")
	}
	if _, ok := svc.Lookup(handles[0].ID()); ok {
		t.Fatalf("pruned query still visible (KeepFinished=2)")
	}
	if got := len(svc.Queries()); got != 2 {
		t.Fatalf("Queries() tracks %d, want 2 after pruning", got)
	}

	// Submitting with no tree is rejected; submitting after Close too.
	if _, err := svc.Submit(context.Background(), Request{}); err == nil {
		t.Fatalf("expected rejection of an empty request")
	}
	svc.Close()
	if _, err := svc.Submit(context.Background(), Request{Tree: joinAggTree(t, fx.cat, 2)}); err == nil {
		t.Fatalf("expected rejection after Close")
	}
}

// TestServerAddrAndListenAndServe covers the front-end's listener plumbing.
func TestServerAddrAndListenAndServe(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	svc := New(fx.cat, Config{Planner: plan.Config{Link: fixedLink()}})
	srv := NewServer(svc)
	if srv.Addr() != nil {
		t.Fatalf("Addr before serving must be nil")
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("server never started listening")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	q, err := req.Submit(wire.QuerySpec{Table: "dims"})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := q.Collect()
	if err != nil || len(rows) != dimRows {
		t.Fatalf("query over ListenAndServe: rows=%d err=%v", len(rows), err)
	}
	_ = req.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("ListenAndServe returned %v", err)
	}
	if err := srv.Serve(nil); err == nil {
		t.Fatalf("Serve after Close must fail")
	}
}
