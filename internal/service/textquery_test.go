package service

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"csq/internal/exec"
	"csq/internal/expr"
	"csq/internal/logical"
	"csq/internal/plan"
	"csq/internal/types"
	"csq/internal/wire"
)

// TestServerTextQueryServerSide submits a pure server-side textual query over
// the wire and compares the streamed rows byte-for-byte against the
// equivalent hand-built logical tree.
func TestServerTextQueryServerSide(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	q, err := req.SubmitText("labels(Label) :- dims(_, Label).", wire.QuerySpec{})
	if err != nil {
		t.Fatalf("submit text: %v", err)
	}
	if q.caps&wire.CapTextQuery == 0 {
		t.Fatalf("server did not negotiate CapTextQuery")
	}
	got, err := q.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}

	scan, err := logical.NewScanByName(fx.cat, "dims", "")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := logical.NewProject(scan, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRun(t, fx, proj)
	if !bytes.Equal(encodeRows(t, got), encodeRows(t, want)) {
		t.Fatalf("text query result differs from the hand-built tree: %d rows vs %d", len(got), len(want))
	}
}

// TestServerTextQueryWithUDF submits a textual query whose udf clause makes
// the server dial the fixture's client runtime, and compares the rows
// byte-for-byte against the equivalent hand-built tree.
func TestServerTextQueryWithUDF(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	q, err := req.SubmitText(
		"scored(GroupID, S) :- events(GroupID, Key, _, _), udf score(Key) as S, GroupID < 5.",
		wire.QuerySpec{ClientAddr: fx.clientAddr})
	if err != nil {
		t.Fatalf("submit text: %v", err)
	}
	got, err := q.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}

	// The equivalent tree, hand-built exactly as the compiler lowers the rule:
	// scan → udf-apply → filter → project.
	scan, err := logical.NewScanByName(fx.cat, "events", "")
	if err != nil {
		t.Fatal(err)
	}
	apply, err := logical.NewUDFApply(scan, []exec.UDFBinding{{
		Name: "score", ArgOrdinals: []int{1}, ResultKind: types.KindFloat, ResultName: "S",
	}})
	if err != nil {
		t.Fatal(err)
	}
	filter, err := logical.NewFilter(apply, expr.NewBinary(expr.OpLt,
		expr.NewBoundColumnRef(0, types.KindInt), expr.NewConst(types.NewInt(5))))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := logical.NewProject(filter, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRun(t, fx, proj)
	if len(want) == 0 {
		t.Fatalf("reference run returned no rows")
	}
	if !bytes.Equal(encodeRows(t, got), encodeRows(t, want)) {
		t.Fatalf("text UDF query differs from the hand-built tree: %d rows vs %d", len(got), len(want))
	}
}

// TestServerTextQueryError checks that a parse/resolve failure travels back
// in the admission ack with its line:column position and caret snippet.
func TestServerTextQueryError(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	req, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	_, serr := req.SubmitText("ans(X) :- nosuch(X).", wire.QuerySpec{})
	if serr == nil {
		t.Fatalf("expected a rejection for an unknown table")
	}
	for _, want := range []string{"1:11:", `unknown table "nosuch"`, "^"} {
		if !strings.Contains(serr.Error(), want) {
			t.Errorf("rejection %q does not contain %q", serr, want)
		}
	}
}

// TestServerOldClientWithoutTextCap plays an old requester on a raw
// connection: a pre-text QuerySpec encoding (no trailing Text field, only
// CapCancel requested) must keep working, and the ack must echo only the
// requested capabilities.
func TestServerOldClientWithoutTextCap(t *testing.T) {
	fx := newServiceFixture(t)
	defer fx.cleanup()
	_, addr := startServer(t, fx, Config{Planner: plan.Config{Link: fixedLink()}})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)

	payload, err := wire.EncodeQuerySpec(&wire.QuerySpec{
		QueryID: 3,
		Caps:    wire.CapCancel,
		Table:   "dims",
		Project: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(wire.MsgQuery, payload); err != nil {
		t.Fatal(err)
	}

	var rows int
	for {
		msg, err := conn.Receive()
		if err != nil {
			t.Fatal(err)
		}
		switch msg.Type {
		case wire.MsgQueryAck:
			ack, err := wire.DecodeQueryAck(msg.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if !ack.OK {
				t.Fatalf("old-client query rejected: %s", ack.Error)
			}
			if ack.Caps != wire.CapCancel {
				t.Fatalf("ack caps = %#x, want only CapCancel: the server must not grant unrequested capabilities", ack.Caps)
			}
		case wire.MsgResultBatch:
			batch, err := wire.DecodeTupleBatch(msg.Payload)
			if err != nil {
				t.Fatal(err)
			}
			rows += len(batch.Tuples)
		case wire.MsgEnd:
			if rows != dimRows {
				t.Fatalf("old-client query returned %d rows, want %d", rows, dimRows)
			}
			return
		case wire.MsgError:
			e, _ := wire.DecodeError(msg.Payload)
			t.Fatalf("old-client query failed: %s", e.Message)
		}
	}
}

// TestQuerySpecTextRoundTrip pins the optional trailing Text field: specs
// without it must encode byte-identically to the pre-text layout, and specs
// with it must round-trip.
func TestQuerySpecTextRoundTrip(t *testing.T) {
	withText := &wire.QuerySpec{
		QueryID: 9,
		Caps:    wire.CapCancel | wire.CapTextQuery,
		Text:    "labels(Label) :- dims(_, Label).",
	}
	data, err := wire.EncodeQuerySpec(withText)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeQuerySpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != withText.Text || got.Table != "" {
		t.Fatalf("text round trip mismatch: %+v", got)
	}

	// Without text, the trailing field is absent entirely.
	plain := &wire.QuerySpec{QueryID: 9, Caps: wire.CapCancel, Table: "dims"}
	plainData, err := wire.EncodeQuerySpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	textless := *withText
	textless.Text = ""
	textless.Table = "dims"
	textlessData, err := wire.EncodeQuerySpec(&textless)
	if err != nil {
		t.Fatal(err)
	}
	if len(textlessData) >= len(data) {
		t.Fatalf("empty Text must not be encoded: %d bytes vs %d with text", len(textlessData), len(data))
	}
	back, err := wire.DecodeQuerySpec(plainData)
	if err != nil {
		t.Fatalf("pre-text layout must keep decoding: %v", err)
	}
	if back.Text != "" || back.Table != "dims" {
		t.Fatalf("pre-text decode mismatch: %+v", back)
	}

	// A spec with neither a table nor text is unsendable.
	if _, err := wire.EncodeQuerySpec(&wire.QuerySpec{QueryID: 1}); err == nil {
		t.Fatalf("expected an error for a spec with no table and no text")
	}
}
