// Package sim is a deterministic discrete-event simulator of the client-site
// UDF execution pipeline: server sender → downlink → client UDF processor →
// uplink → server receiver. It substitutes for the paper's physical testbed
// (a 28.8 Kbit modem and an Ethernet link emulating an asymmetric N=100
// connection) so that the evaluation figures can be regenerated quickly and
// reproducibly, without wall-clock waits.
//
// The model is the one the paper uses for its analysis: each link transfers
// one message at a time at its bandwidth, each direction adds a fixed
// propagation latency, the client processes one tuple at a time, and the
// semi-join's bounded buffer allows at most W (the pipeline concurrency
// factor) tuples to be in flight between the sender and the receiver.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Strategy identifies the execution strategy being simulated.
type Strategy uint8

// Simulated strategies.
const (
	// StrategyNaive is tuple-at-a-time execution: one message in flight.
	StrategyNaive Strategy = iota
	// StrategySemiJoin ships duplicate-free argument columns with a bounded
	// number of messages in flight.
	StrategySemiJoin
	// StrategyClientJoin ships full records and receives filtered, projected
	// records; sender and receiver are not coordinated.
	StrategyClientJoin
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategySemiJoin:
		return "semi-join"
	case StrategyClientJoin:
		return "client-site-join"
	default:
		return "unknown"
	}
}

// Network describes the simulated client↔server connection.
type Network struct {
	// DownBandwidth is the server→client bandwidth in bytes per second.
	DownBandwidth float64
	// UpBandwidth is the client→server bandwidth in bytes per second.
	UpBandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// Modem28_8 is the paper's 28.8 Kbit/s phone connection (3.6 KB/s each way).
func Modem28_8() Network {
	return Network{DownBandwidth: 3600, UpBandwidth: 3600, Latency: 700 * time.Millisecond}
}

// Symmetric10Mbit is the paper's 10 Mbit Ethernet connection.
func Symmetric10Mbit() Network {
	return Network{DownBandwidth: 1.25e6, UpBandwidth: 1.25e6, Latency: 5 * time.Millisecond}
}

// Asymmetric returns a network whose downlink is n times faster than its
// uplink (the paper's multiplexed-cable scenario, N=100 in Figure 9).
func Asymmetric(upBandwidth float64, n float64, latency time.Duration) Network {
	return Network{DownBandwidth: upBandwidth * n, UpBandwidth: upBandwidth, Latency: latency}
}

// Asymmetry returns N, the downlink/uplink bandwidth ratio.
func (n Network) Asymmetry() float64 {
	if n.UpBandwidth <= 0 || n.DownBandwidth <= 0 {
		return 1
	}
	return n.DownBandwidth / n.UpBandwidth
}

// Validate checks the network parameters.
func (n Network) Validate() error {
	if n.DownBandwidth <= 0 || n.UpBandwidth <= 0 {
		return fmt.Errorf("sim: bandwidths must be positive")
	}
	if n.Latency < 0 {
		return fmt.Errorf("sim: negative latency")
	}
	return nil
}

// Workload describes the relation and the UDF the strategies are applied to,
// using the paper's parameters.
type Workload struct {
	// Rows is the cardinality of the input relation.
	Rows int
	// ArgBytes is the size of the argument columns of one record.
	ArgBytes int
	// NonArgBytes is the size of the remaining columns of one record
	// (I = ArgBytes + NonArgBytes, A = ArgBytes / I).
	NonArgBytes int
	// ResultBytes is R, the size of one UDF result.
	ResultBytes int
	// DistinctFraction is D, the fraction of rows with distinct argument
	// values.
	DistinctFraction float64
	// Selectivity is S, the selectivity of the pushable predicate applied at
	// the client by the client-site join (1 when there is none).
	Selectivity float64
	// ReturnArguments makes the client-site join ship the argument columns
	// back too (i.e. no pushable projection). The paper's experiments set
	// P·(I+R) = I·(1−A)+R, i.e. arguments are projected away; that is the
	// default (false).
	ReturnArguments bool
	// ClientTimePerTuple is the client's processing time per UDF invocation.
	ClientTimePerTuple time.Duration
	// PerMessageOverhead is the fixed framing overhead per message in bytes
	// (frame header plus batch header).
	PerMessageOverhead int
}

// InputSize returns I, the full record size.
func (w Workload) InputSize() int { return w.ArgBytes + w.NonArgBytes }

// Validate checks the workload parameters.
func (w Workload) Validate() error {
	if w.Rows < 0 {
		return fmt.Errorf("sim: negative row count")
	}
	if w.ArgBytes < 0 || w.NonArgBytes < 0 || w.ResultBytes < 0 || w.PerMessageOverhead < 0 {
		return fmt.Errorf("sim: negative sizes")
	}
	if w.ArgBytes+w.NonArgBytes == 0 {
		return fmt.Errorf("sim: record size must be positive")
	}
	if w.DistinctFraction <= 0 || w.DistinctFraction > 1 {
		return fmt.Errorf("sim: distinct fraction %g outside (0,1]", w.DistinctFraction)
	}
	if w.Selectivity < 0 || w.Selectivity > 1 {
		return fmt.Errorf("sim: selectivity %g outside [0,1]", w.Selectivity)
	}
	if w.ClientTimePerTuple < 0 {
		return fmt.Errorf("sim: negative client time")
	}
	return nil
}

// Config is one simulation run.
type Config struct {
	Network  Network
	Workload Workload
	Strategy Strategy
	// ConcurrencyFactor is the semi-join's pipeline concurrency factor (the
	// bounded-buffer capacity). The naive strategy always uses 1; the
	// client-site join is unbounded. Zero means 1.
	ConcurrencyFactor int
}

// Result summarises a simulation run.
type Result struct {
	// Duration is the simulated wall-clock time from first send to last
	// result arrival.
	Duration time.Duration
	// BytesDown and BytesUp are the payload bytes moved on each link.
	BytesDown int64
	BytesUp   int64
	// MessagesDown and MessagesUp count the messages on each link.
	MessagesDown int
	MessagesUp   int
	// Invocations is the number of UDF invocations at the client.
	Invocations int
	// DownBusy and UpBusy are the total transfer (busy) times of each link;
	// comparing them against Duration shows which link was the bottleneck.
	DownBusy time.Duration
	UpBusy   time.Duration
}

// message is one unit travelling through the pipeline.
type message struct {
	downBytes int
	upBytes   int
	procTime  time.Duration
}

// Run simulates one configuration and returns the timing and traffic summary.
func Run(cfg Config) (Result, error) {
	if err := cfg.Network.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	msgs, window := buildMessages(cfg)
	return simulate(cfg.Network, msgs, window), nil
}

// buildMessages expands the workload into the per-message downlink/uplink
// payloads for the configured strategy, and returns the pipeline window.
func buildMessages(cfg Config) ([]message, int) {
	w := cfg.Workload
	window := cfg.ConcurrencyFactor
	if window < 1 {
		window = 1
	}
	var msgs []message
	switch cfg.Strategy {
	case StrategyNaive, StrategySemiJoin:
		if cfg.Strategy == StrategyNaive {
			window = 1
		}
		// Distinct argument tuples only; results come back bare.
		distinct := int(math.Round(float64(w.Rows) * w.DistinctFraction))
		if w.Rows > 0 && distinct == 0 {
			distinct = 1
		}
		for i := 0; i < distinct; i++ {
			msgs = append(msgs, message{
				downBytes: w.ArgBytes + w.PerMessageOverhead,
				upBytes:   w.ResultBytes + w.PerMessageOverhead,
				procTime:  w.ClientTimePerTuple,
			})
		}
	case StrategyClientJoin:
		// Full records down; filtered, projected records up. The sender and
		// receiver need no coordination, so the window is effectively
		// unbounded.
		window = w.Rows + 1
		returned := w.NonArgBytes + w.ResultBytes
		if w.ReturnArguments {
			returned += w.ArgBytes
		}
		// Spread the selectivity deterministically across the stream so the
		// uplink load is even (matches the random placement in the paper's
		// workload without needing a RNG).
		kept := 0
		for i := 0; i < w.Rows; i++ {
			up := 0
			wantKept := int(math.Round(float64(i+1) * w.Selectivity))
			if wantKept > kept {
				up = returned + w.PerMessageOverhead
				kept = wantKept
			}
			msgs = append(msgs, message{
				downBytes: w.InputSize() + w.PerMessageOverhead,
				upBytes:   up,
				procTime:  w.ClientTimePerTuple,
			})
		}
	}
	return msgs, window
}

// simulate runs the discrete-event pipeline model.
//
// Resources: the downlink, the client processor and the uplink each serve one
// message at a time in FIFO order. Each direction adds the propagation
// latency after its transfer completes. Message i may not start its downlink
// transfer until message i-window has fully arrived back at the server (the
// bounded buffer of the semi-join architecture).
func simulate(net Network, msgs []message, window int) Result {
	var res Result
	if len(msgs) == 0 {
		return res
	}
	n := len(msgs)
	resultArrive := make([]time.Duration, n)
	var downFree, clientFree, upFree time.Duration
	var finish time.Duration

	for i, m := range msgs {
		downStart := downFree
		if window > 0 && i >= window {
			if wait := resultArrive[i-window]; wait > downStart {
				downStart = wait
			}
		}
		downDur := transferTime(m.downBytes, net.DownBandwidth)
		downEnd := downStart + downDur
		downFree = downEnd
		res.DownBusy += downDur

		arriveClient := downEnd + net.Latency
		clientStart := maxDur(arriveClient, clientFree)
		clientEnd := clientStart + m.procTime
		clientFree = clientEnd

		var arrive time.Duration
		if m.upBytes > 0 {
			upStart := maxDur(clientEnd, upFree)
			upDur := transferTime(m.upBytes, net.UpBandwidth)
			upEnd := upStart + upDur
			upFree = upEnd
			res.UpBusy += upDur
			arrive = upEnd + net.Latency
			res.MessagesUp++
			res.BytesUp += int64(m.upBytes)
		} else {
			// Nothing to return (filtered out at the client); the "result"
			// is implicitly complete when the client finishes processing.
			arrive = clientEnd
		}
		resultArrive[i] = arrive
		if arrive > finish {
			finish = arrive
		}
		res.MessagesDown++
		res.BytesDown += int64(m.downBytes)
		res.Invocations++
	}
	res.Duration = finish
	return res
}

func transferTime(bytes int, bandwidth float64) time.Duration {
	if bytes <= 0 || bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bandwidth * float64(time.Second))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Compare runs both the semi-join and the client-site join on the same
// workload and returns their results plus the relative time (CSJ/SJ) that the
// paper plots in Figures 8–10.
func Compare(net Network, w Workload, concurrency int) (sj, cj Result, relative float64, err error) {
	sj, err = Run(Config{Network: net, Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: concurrency})
	if err != nil {
		return sj, cj, 0, err
	}
	cj, err = Run(Config{Network: net, Workload: w, Strategy: StrategyClientJoin})
	if err != nil {
		return sj, cj, 0, err
	}
	if sj.Duration <= 0 {
		return sj, cj, math.Inf(1), nil
	}
	relative = float64(cj.Duration) / float64(sj.Duration)
	return sj, cj, relative, nil
}
