package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func baseWorkload() Workload {
	return Workload{
		Rows:               100,
		ArgBytes:           500,
		NonArgBytes:        500,
		ResultBytes:        1000,
		DistinctFraction:   1,
		Selectivity:        0.5,
		ClientTimePerTuple: time.Millisecond,
		PerMessageOverhead: 26,
	}
}

func TestValidation(t *testing.T) {
	if err := Modem28_8().Validate(); err != nil {
		t.Errorf("modem network invalid: %v", err)
	}
	badNets := []Network{
		{DownBandwidth: 0, UpBandwidth: 1},
		{DownBandwidth: 1, UpBandwidth: 0},
		{DownBandwidth: 1, UpBandwidth: 1, Latency: -time.Second},
	}
	for _, n := range badNets {
		if err := n.Validate(); err == nil {
			t.Errorf("network %+v should be invalid", n)
		}
	}
	if err := baseWorkload().Validate(); err != nil {
		t.Errorf("base workload invalid: %v", err)
	}
	bad := baseWorkload()
	bad.DistinctFraction = 0
	if err := bad.Validate(); err == nil {
		t.Error("D=0 should be invalid")
	}
	bad = baseWorkload()
	bad.Selectivity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("S>1 should be invalid")
	}
	bad = baseWorkload()
	bad.ArgBytes, bad.NonArgBytes = 0, 0
	if err := bad.Validate(); err == nil {
		t.Error("empty records should be invalid")
	}
	bad = baseWorkload()
	bad.Rows = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rows should be invalid")
	}
	bad = baseWorkload()
	bad.ClientTimePerTuple = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative client time should be invalid")
	}
	if _, err := Run(Config{Network: Network{}, Workload: baseWorkload()}); err == nil {
		t.Error("Run with invalid network should fail")
	}
	if _, err := Run(Config{Network: Modem28_8(), Workload: Workload{Rows: -1, ArgBytes: 1, DistinctFraction: 1}}); err == nil {
		t.Error("Run with invalid workload should fail")
	}
}

func TestStrategyAndNetworkHelpers(t *testing.T) {
	if StrategyNaive.String() != "naive" || StrategySemiJoin.String() != "semi-join" || StrategyClientJoin.String() != "client-site-join" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy name wrong")
	}
	if Asymmetric(3600, 100, 0).Asymmetry() != 100 {
		t.Error("asymmetric helper wrong")
	}
	if Symmetric10Mbit().Asymmetry() != 1 {
		t.Error("symmetric helper wrong")
	}
	if (Network{}).Asymmetry() != 1 {
		t.Error("degenerate asymmetry should be 1")
	}
	if baseWorkload().InputSize() != 1000 {
		t.Error("InputSize wrong")
	}
}

func TestEmptyWorkload(t *testing.T) {
	w := baseWorkload()
	w.Rows = 0
	res, err := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategySemiJoin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 0 || res.BytesDown != 0 || res.Invocations != 0 {
		t.Errorf("empty workload result = %+v", res)
	}
}

func TestByteAccounting(t *testing.T) {
	w := baseWorkload()
	w.Rows = 10
	w.Selectivity = 1
	w.DistinctFraction = 1

	sj, err := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantDown := int64(10 * (500 + 26))
	wantUp := int64(10 * (1000 + 26))
	if sj.BytesDown != wantDown || sj.BytesUp != wantUp {
		t.Errorf("semi-join bytes = %d/%d, want %d/%d", sj.BytesDown, sj.BytesUp, wantDown, wantUp)
	}
	if sj.Invocations != 10 || sj.MessagesDown != 10 || sj.MessagesUp != 10 {
		t.Errorf("semi-join counts = %+v", sj)
	}

	cj, err := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategyClientJoin})
	if err != nil {
		t.Fatal(err)
	}
	wantDown = int64(10 * (1000 + 26))
	wantUp = int64(10 * (500 + 1000 + 26)) // non-arguments + result, arguments projected away
	if cj.BytesDown != wantDown || cj.BytesUp != wantUp {
		t.Errorf("client-join bytes = %d/%d, want %d/%d", cj.BytesDown, cj.BytesUp, wantDown, wantUp)
	}
	// With ReturnArguments the uplink grows by the argument bytes.
	w.ReturnArguments = true
	cj2, _ := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategyClientJoin})
	if cj2.BytesUp != cj.BytesUp+10*500 {
		t.Errorf("ReturnArguments uplink = %d, want %d", cj2.BytesUp, cj.BytesUp+10*500)
	}
}

func TestDuplicateEliminationInSimulator(t *testing.T) {
	w := baseWorkload()
	w.Rows = 100
	w.DistinctFraction = 0.25
	sj, err := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sj.Invocations != 25 {
		t.Errorf("semi-join should only ship 25 distinct arguments, shipped %d", sj.Invocations)
	}
	cj, _ := Run(Config{Network: Modem28_8(), Workload: w, Strategy: StrategyClientJoin})
	if cj.Invocations != 100 {
		t.Errorf("client-site join cannot exploit duplicates; shipped %d", cj.Invocations)
	}
}

func TestSelectivityReducesUplink(t *testing.T) {
	w := baseWorkload()
	w.Rows = 100
	low := w
	low.Selectivity = 0.1
	high := w
	high.Selectivity = 0.9
	rLow, _ := Run(Config{Network: Modem28_8(), Workload: low, Strategy: StrategyClientJoin})
	rHigh, _ := Run(Config{Network: Modem28_8(), Workload: high, Strategy: StrategyClientJoin})
	if rLow.MessagesUp >= rHigh.MessagesUp {
		t.Errorf("lower selectivity should return fewer rows: %d vs %d", rLow.MessagesUp, rHigh.MessagesUp)
	}
	if rLow.MessagesUp != 10 || rHigh.MessagesUp != 90 {
		t.Errorf("uplink messages = %d and %d, want 10 and 90", rLow.MessagesUp, rHigh.MessagesUp)
	}
	// Selectivity never changes the downlink of either strategy.
	if rLow.BytesDown != rHigh.BytesDown {
		t.Error("selectivity should not change the client-site join downlink")
	}
}

func TestNaiveVersusConcurrent(t *testing.T) {
	// The headline claim of Section 2.1/4.1: naive tuple-at-a-time execution
	// pays the full latency per tuple; pipelining hides it.
	w := Figure6Workload(1000)
	net := Modem28_8()
	naive, err := Run(Config{Network: net, Workload: w, Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(Config{Network: net, Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Duration <= conc.Duration {
		t.Errorf("concurrency should beat naive execution: naive=%v concurrent=%v", naive.Duration, conc.Duration)
	}
	// With 100 tuples and 1.4 s of round-trip latency per tuple, naive must
	// cost at least 140 s plus transfer; concurrent execution should be close
	// to the pure bandwidth bound (2*1000*100/3600 ≈ 56 s).
	if naive.Duration < 140*time.Second {
		t.Errorf("naive duration %v should include per-tuple latency", naive.Duration)
	}
	bandwidthBound := time.Duration(float64(2*1026*100) / 3600 * float64(time.Second))
	if conc.Duration > bandwidthBound+10*time.Second {
		t.Errorf("concurrent duration %v should approach the bandwidth bound %v", conc.Duration, bandwidthBound)
	}
	// The naive strategy ignores any configured concurrency factor.
	naive2, _ := Run(Config{Network: net, Workload: w, Strategy: StrategyNaive, ConcurrencyFactor: 50})
	if naive2.Duration != naive.Duration {
		t.Error("naive strategy must ignore the concurrency factor")
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("figure 6 series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 21 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		// Time decreases (weakly) with the concurrency factor and flattens:
		// the drop from 1→6 is much larger than from 16→21.
		first, sixth := s.Points[0].Y, s.Points[5].Y
		late, last := s.Points[15].Y, s.Points[20].Y
		if sixth > first {
			t.Errorf("series %s: time rose with concurrency (%.0f → %.0f)", s.Label, first, sixth)
		}
		earlyDrop := first - sixth
		lateDrop := late - last
		if earlyDrop <= 0 || lateDrop > earlyDrop/4+1 {
			t.Errorf("series %s: expected steep initial drop then flat tail (early %.0f, late %.0f)", s.Label, earlyDrop, lateDrop)
		}
	}
	// Larger objects take longer overall.
	if !(fig.Series[0].Points[0].Y < fig.Series[2].Points[0].Y) {
		t.Error("100-byte objects should be faster than 1000-byte objects")
	}
	// Knee positions: the 1000-byte curve should be within ~10% of its floor
	// by factor 5, the 500-byte curve by factor 10 (paper's observation), and
	// the 100-byte curve should still be improving at factor 10.
	within := func(s Series, factor int) bool {
		floor := s.Points[len(s.Points)-1].Y
		return s.Points[factor-1].Y <= floor*1.15
	}
	if !within(fig.Series[2], 6) {
		t.Error("1000-byte curve should flatten by a concurrency factor of ~5")
	}
	if !within(fig.Series[1], 11) {
		t.Error("500-byte curve should flatten by a concurrency factor of ~10")
	}
	if within(fig.Series[0], 6) {
		t.Error("100-byte curve should still be improving at a factor of 5")
	}
}

func TestFigure2(t *testing.T) {
	fig, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("figure 2 shape wrong: %+v", fig)
	}
	if fig.Series[0].Points[0].Y <= fig.Series[0].Points[1].Y {
		t.Error("concurrent execution should be faster than naive execution")
	}
}

func TestFigure8Shape(t *testing.T) {
	fig, err := Figure8(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("figure 8 series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Monotonically non-decreasing in selectivity.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-0.02 {
				t.Errorf("series %s not monotone at %g: %.3f < %.3f", s.Label, s.Points[i].X, s.Points[i].Y, s.Points[i-1].Y)
			}
		}
	}
	// Larger results favour the client-site join at low selectivity: the
	// R=5000 curve starts lower than the R=100 curve.
	if !(fig.Series[3].Points[1].Y < fig.Series[0].Points[1].Y) {
		t.Error("larger results should lower the left end of the curve")
	}
	// The R=1000 curve should be roughly flat below S≈0.5 and visibly higher
	// at S=1 (the knee the paper places at ~0.6).
	r1000 := fig.Series[1]
	if math.Abs(r1000.Points[2].Y-r1000.Points[4].Y) > 0.1 {
		t.Errorf("R=1000 curve should be flat on the left: %.3f vs %.3f", r1000.Points[2].Y, r1000.Points[4].Y)
	}
	if r1000.Points[10].Y < r1000.Points[4].Y+0.2 {
		t.Errorf("R=1000 curve should rise beyond the knee: %.3f vs %.3f", r1000.Points[10].Y, r1000.Points[4].Y)
	}
}

func TestFigure9Shape(t *testing.T) {
	fig, err := Figure9(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("figure 9 series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// With N=100 the curves rise essentially from the origin region:
		// the value at S=1 should be much larger than at S=0.1 (no flat part),
		// and growth should be roughly linear (value at 0.8 ≈ 2x value at 0.4).
		if s.Points[10].Y < 2*s.Points[1].Y {
			t.Errorf("series %s shows a flat part that should not exist on an asymmetric link", s.Label)
		}
		ratio := s.Points[8].Y / s.Points[4].Y
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("series %s growth not roughly linear: f(0.8)/f(0.4)=%.2f", s.Label, ratio)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	fig, err := Figure10(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("figure 10 series = %d", len(fig.Series))
	}
	for i, s := range fig.Series {
		// Relative time decreases (weakly) with result size.
		for j := 1; j < len(s.Points); j++ {
			if s.Points[j].Y > s.Points[j-1].Y+0.05 {
				t.Errorf("series %s rises with result size at R=%g", s.Label, s.Points[j].X)
			}
		}
		// Lower selectivity curves sit lower.
		if i > 0 {
			prev := fig.Series[i-1]
			if s.Points[len(s.Points)-1].Y < prev.Points[len(prev.Points)-1].Y {
				t.Errorf("higher selectivity (%s) should not end below lower selectivity (%s)", s.Label, prev.Label)
			}
		}
	}
	// The S=1 curve never crosses below 1.0.
	for _, p := range fig.Series[3].Points {
		if p.Y < 0.99 {
			t.Errorf("S=1 curve crossed 1.0 at R=%g (%.3f)", p.X, p.Y)
		}
	}
	// The S=0.25 curve eventually drops below 1.0 (the crossover).
	last := fig.Series[0].Points[len(fig.Series[0].Points)-1]
	if last.Y >= 1 {
		t.Errorf("S=0.25 curve should cross below 1.0 by R=2000, got %.3f", last.Y)
	}
}

func TestAblationFigures(t *testing.T) {
	dup, err := AblationDuplicates(10)
	if err != nil {
		t.Fatal(err)
	}
	pts := dup.Series[0].Points
	// More duplicates (small D) favour the semi-join: relative time (CSJ/SJ)
	// should be higher at D=0.1 than at D=1.
	if !(pts[0].Y > pts[len(pts)-1].Y) {
		t.Errorf("duplicates should favour the semi-join: %.3f vs %.3f", pts[0].Y, pts[len(pts)-1].Y)
	}
	proj, err := AblationProjection(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Series) != 2 {
		t.Fatalf("projection ablation series = %d", len(proj.Series))
	}
	// Returning the arguments can never make the client-site join faster.
	for i := range proj.Series[0].Points {
		if proj.Series[1].Points[i].Y < proj.Series[0].Points[i].Y-1e-9 {
			t.Errorf("returning arguments should not be faster at S=%g", proj.Series[0].Points[i].X)
		}
	}
}

// TestQuickSimulatorInvariants property: for random workloads the simulated
// duration is at least each link's busy time, byte counts are non-negative,
// and increasing the concurrency factor never slows the semi-join down.
func TestQuickSimulatorInvariants(t *testing.T) {
	f := func(rows uint8, arg, nonArg, res uint16, dRaw, sRaw uint8, w1, w2 uint8) bool {
		w := Workload{
			Rows:               int(rows%100) + 1,
			ArgBytes:           int(arg%5000) + 1,
			NonArgBytes:        int(nonArg % 5000),
			ResultBytes:        int(res % 5000),
			DistinctFraction:   (float64(dRaw%100) + 1) / 100,
			Selectivity:        float64(sRaw%101) / 100,
			ClientTimePerTuple: time.Millisecond,
			PerMessageOverhead: 26,
		}
		net := Modem28_8()
		f1 := int(w1%30) + 1
		f2 := f1 + int(w2%30) + 1
		r1, err1 := Run(Config{Network: net, Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: f1})
		r2, err2 := Run(Config{Network: net, Workload: w, Strategy: StrategySemiJoin, ConcurrencyFactor: f2})
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.Duration < r1.DownBusy || r1.Duration < r1.UpBusy {
			return false
		}
		if r1.BytesDown < 0 || r1.BytesUp < 0 {
			return false
		}
		// More concurrency never hurts.
		if r2.Duration > r1.Duration+time.Millisecond {
			return false
		}
		cj, err := Run(Config{Network: net, Workload: w, Strategy: StrategyClientJoin})
		if err != nil {
			return false
		}
		return cj.Duration >= cj.DownBusy && cj.Invocations == w.Rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorMatchesCostModelOrdering: when the analytic cost model of
// package costmodel strongly prefers one strategy, the simulator should agree
// on the winner. (Checked here structurally, without importing costmodel, by
// using parameter regimes from the paper where the winner is unambiguous.)
func TestSimulatorAgreesWithAnalysis(t *testing.T) {
	net := Modem28_8()
	// Large results + selective pushable predicate: client-site join wins.
	w := figure7Workload(100, 500, 500, 5000, 0.1)
	_, _, rel, err := Compare(net, w, DefaultFigureConcurrency)
	if err != nil {
		t.Fatal(err)
	}
	if rel >= 1 {
		t.Errorf("client-site join should win with large results and selective predicates, rel=%.3f", rel)
	}
	// Tiny results and no selectivity: the semi-join wins.
	w = figure7Workload(100, 500, 500, 100, 1.0)
	_, _, rel, err = Compare(net, w, DefaultFigureConcurrency)
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 1 {
		t.Errorf("semi-join should win with tiny results and no pushable selectivity, rel=%.3f", rel)
	}
}
