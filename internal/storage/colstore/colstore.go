// Package colstore implements the disk-backed columnar storage engine: an
// append-only table stored as fixed-size per-column segments on disk, each
// segment compressed with the wire layer's dictionary codec (with a plain
// fallback, like the wire's AppendTupleBatchAuto) and summarized by a zone
// map (min/max, row count, null count).
//
// colstore.Table implements storage.Relation, so every operator, strategy and
// the planner work against it unchanged; the execution engine's vectorized
// ColumnarScan uses the richer Snapshot surface to materialize only the
// columns a query needs and to skip whole segments via zone maps before any
// decode happens.
//
// # On-disk layout
//
// A table is a directory of three files:
//
//	meta.csq     magic, table name, schema (types.EncodeSchema), segment rows
//	segments.csq column chunks, appended segment by segment
//	zonemaps.csq one length-prefixed index record per segment: per column the
//	             chunk offset/size in segments.csq, null count and min/max
//
// Each column chunk in segments.csq is one tag byte (codecPlain or codecDict)
// followed by the wire encoding of the column's values as a batch of
// one-column tuples. Segments are immutable once written; a crash mid-flush
// leaves at worst a trailing partial index record, which Open ignores (the
// matching data bytes are unreferenced and simply overwritten by reuse of the
// offset bookkeeping on the next append).
package colstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"csq/internal/storage"
	"csq/internal/types"
)

const (
	metaFile = "meta.csq"
	dataFile = "segments.csq"
	idxFile  = "zonemaps.csq"

	// DefaultSegmentRows is the number of rows per segment when Options does
	// not override it.
	DefaultSegmentRows = 4096

	// maxMetaEntry bounds decoded counts against corrupt files.
	maxMetaEntry = 1 << 24
)

var metaMagic = [8]byte{'C', 'S', 'Q', 'C', 'O', 'L', '1', '\n'}

// Options configures table creation.
type Options struct {
	// SegmentRows is the number of rows per on-disk segment
	// (DefaultSegmentRows when 0).
	SegmentRows int
}

// Table is a disk-backed columnar relation. It is safe for concurrent readers
// and writers; scans see a consistent snapshot of the segments and buffered
// tail rows present when the snapshot was taken.
type Table struct {
	name        string
	schema      *types.Schema
	dir         string
	segmentRows int

	version  atomic.Uint64 // bumps on every mutation (storage.Versioned)
	flushGen atomic.Uint64 // bumps on every segment flush

	mu       sync.RWMutex
	dataF    *os.File
	idxF     *os.File
	dataEnd  int64
	segs     []segmentMeta // append-only; sealed entries are immutable
	tail     []types.Tuple // buffered rows not yet flushed to a segment
	rows     int           // total rows (segments + tail)
	size     int64         // accumulated encoded size of all rows
	closed   bool
	writeErr error // sticky: a failed flush poisons the table
}

// colMeta locates one column chunk inside segments.csq and carries its zone
// map.
type colMeta struct {
	off  int64
	size int64
	zm   ZoneMap
}

// segmentMeta describes one immutable on-disk segment.
type segmentMeta struct {
	rows int
	cols []colMeta
}

// ZoneMap summarizes one column of one segment: the number of rows and nulls,
// and (for comparable, not-all-null columns) the min and max value. Pruning
// is conservative: HasMinMax is false whenever min/max could not be
// maintained (non-comparable kinds, cross-kind values), and such segments are
// never skipped.
type ZoneMap struct {
	Rows      int
	Nulls     int
	HasMinMax bool
	Min, Max  types.Value
}

// Create creates a new columnar table in dir (which must be empty or not yet
// exist).
func Create(dir, name string, schema *types.Schema, opts Options) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("colstore: table name must not be empty")
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("colstore: table %q needs at least one column", name)
	}
	segRows := opts.SegmentRows
	if segRows <= 0 {
		segRows = DefaultSegmentRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: create %q: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		return nil, fmt.Errorf("colstore: table already exists in %q", dir)
	}
	meta := append([]byte(nil), metaMagic[:]...)
	meta = binary.AppendUvarint(meta, uint64(len(name)))
	meta = append(meta, name...)
	meta = types.EncodeSchema(meta, schema)
	meta = binary.AppendUvarint(meta, uint64(segRows))
	if err := os.WriteFile(filepath.Join(dir, metaFile), meta, 0o644); err != nil {
		return nil, fmt.Errorf("colstore: write meta: %w", err)
	}
	t := &Table{name: name, schema: schema.Clone(), dir: dir, segmentRows: segRows}
	if err := t.openFiles(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open opens an existing columnar table directory, reading the metadata and
// the zone-map index. A truncated trailing index record (crash mid-flush) is
// ignored.
func Open(dir string) (*Table, error) {
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("colstore: open %q: %w", dir, err)
	}
	if len(meta) < len(metaMagic) || string(meta[:len(metaMagic)]) != string(metaMagic[:]) {
		return nil, fmt.Errorf("colstore: %q is not a columnar table (bad magic)", dir)
	}
	src := meta[len(metaMagic):]
	nameLen, c := binary.Uvarint(src)
	if c <= 0 || nameLen > maxMetaEntry || int(nameLen) > len(src[c:]) {
		return nil, fmt.Errorf("colstore: corrupt meta in %q", dir)
	}
	src = src[c:]
	name := string(src[:nameLen])
	src = src[nameLen:]
	schema, used, err := types.DecodeSchema(src)
	if err != nil {
		return nil, fmt.Errorf("colstore: corrupt schema in %q: %w", dir, err)
	}
	src = src[used:]
	segRows, c := binary.Uvarint(src)
	if c <= 0 || segRows == 0 || segRows > maxMetaEntry {
		return nil, fmt.Errorf("colstore: corrupt segment size in %q", dir)
	}
	t := &Table{name: name, schema: schema, dir: dir, segmentRows: int(segRows)}
	if err := t.openFiles(); err != nil {
		return nil, err
	}
	if err := t.loadIndex(); err != nil {
		_ = t.Close()
		return nil, err
	}
	return t, nil
}

func (t *Table) openFiles() error {
	var err error
	t.dataF, err = os.OpenFile(filepath.Join(t.dir, dataFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("colstore: open data file: %w", err)
	}
	t.idxF, err = os.OpenFile(filepath.Join(t.dir, idxFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		_ = t.dataF.Close()
		return fmt.Errorf("colstore: open index file: %w", err)
	}
	st, err := t.dataF.Stat()
	if err != nil {
		_ = t.dataF.Close()
		_ = t.idxF.Close()
		return fmt.Errorf("colstore: stat data file: %w", err)
	}
	t.dataEnd = st.Size()
	return nil
}

// loadIndex replays zonemaps.csq into the in-memory segment list.
func (t *Table) loadIndex() error {
	raw, err := os.ReadFile(filepath.Join(t.dir, idxFile))
	if err != nil {
		return fmt.Errorf("colstore: read index: %w", err)
	}
	off := 0
	for off < len(raw) {
		recLen, c := binary.Uvarint(raw[off:])
		if c <= 0 || recLen > maxMetaEntry || off+c+int(recLen) > len(raw) {
			// Truncated trailing record from a crash mid-flush: the segment
			// was never committed, so stop here.
			break
		}
		off += c
		seg, err := decodeSegmentMeta(raw[off:off+int(recLen)], t.schema.Len(), t.dataEnd)
		if err != nil {
			return fmt.Errorf("colstore: segment %d: %w", len(t.segs), err)
		}
		off += int(recLen)
		t.segs = append(t.segs, seg)
		t.rows += seg.rows
		for _, cm := range seg.cols {
			t.size += cm.size
		}
	}
	t.flushGen.Store(uint64(len(t.segs)))
	t.version.Store(uint64(t.rows))
	return nil
}

// Name implements storage.Relation.
func (t *Table) Name() string { return t.name }

// Schema implements storage.Relation. Callers must not modify it.
func (t *Table) Schema() *types.Schema { return t.schema }

// Version implements storage.Versioned: it changes on every mutation.
func (t *Table) Version() uint64 { return t.version.Load() }

// SegmentSetVersion implements storage.SegmentVersioned: it identifies the
// exact segment set and buffered tail a scan would see, so the planner's
// statistics cache keys stay precise about what zone-map pruning applied to.
func (t *Table) SegmentSetVersion() string {
	t.mu.RLock()
	segs, tail := len(t.segs), len(t.tail)
	t.mu.RUnlock()
	return fmt.Sprintf("%d.%d+%d", segs, t.flushGen.Load(), tail)
}

// SegmentRows returns the configured rows per segment.
func (t *Table) SegmentRows() int { return t.segmentRows }

// RowCount returns the number of stored rows (flushed and buffered).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// AvgRowSize returns the mean on-disk row size in bytes (buffered tail rows
// count at their encoded size; 0 for empty tables).
func (t *Table) AvgRowSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.rows == 0 {
		return 0
	}
	return int(t.size / int64(t.rows))
}

// Insert appends a tuple after validating its arity and column kinds. Full
// tail buffers are flushed to an on-disk segment automatically.
func (t *Table) Insert(row types.Tuple) error {
	return t.InsertBatch([]types.Tuple{row})
}

// InsertBatch appends many tuples, validating each.
func (t *Table) InsertBatch(rows []types.Tuple) error {
	for _, r := range rows {
		if err := t.validate(r); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeState(); err != nil {
		return err
	}
	for _, r := range rows {
		t.tail = append(t.tail, r.Clone())
		t.rows++
		t.size += int64(r.Size())
		if len(t.tail) >= t.segmentRows {
			if err := t.flushLocked(); err != nil {
				return err
			}
		}
	}
	t.version.Add(1)
	return nil
}

// Flush seals the buffered tail into a (possibly partial) on-disk segment.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeState(); err != nil {
		return err
	}
	if len(t.tail) == 0 {
		return nil
	}
	if err := t.flushLocked(); err != nil {
		return err
	}
	t.version.Add(1)
	return nil
}

func (t *Table) writeState() error {
	if t.closed {
		return fmt.Errorf("colstore: table %q is closed", t.name)
	}
	if t.writeErr != nil {
		return fmt.Errorf("colstore: table %q failed earlier: %w", t.name, t.writeErr)
	}
	return nil
}

// flushLocked encodes the tail as one segment: per-column chunks appended to
// the data file, then one committed index record. Called with mu held.
func (t *Table) flushLocked() error {
	seg, data, idxRec, err := encodeSegment(t.schema, t.tail, t.dataEnd)
	if err != nil {
		t.writeErr = err
		return err
	}
	if _, err := t.dataF.WriteAt(data, t.dataEnd); err != nil {
		t.writeErr = fmt.Errorf("colstore: write segment: %w", err)
		return t.writeErr
	}
	idxEnd := int64(0)
	if st, err := t.idxF.Stat(); err == nil {
		idxEnd = st.Size()
	}
	rec := binary.AppendUvarint(nil, uint64(len(idxRec)))
	rec = append(rec, idxRec...)
	if _, err := t.idxF.WriteAt(rec, idxEnd); err != nil {
		t.writeErr = fmt.Errorf("colstore: write zone map: %w", err)
		return t.writeErr
	}
	t.dataEnd += int64(len(data))
	t.segs = append(t.segs, seg)
	t.tail = nil
	t.flushGen.Add(1)
	return nil
}

// Close flushes the buffered tail and releases the table's files.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	var err error
	if t.writeErr == nil && len(t.tail) > 0 {
		err = t.flushLocked()
	}
	t.closed = true
	if e := t.dataF.Close(); err == nil {
		err = e
	}
	if e := t.idxF.Close(); err == nil {
		err = e
	}
	return err
}

func (t *Table) validate(row types.Tuple) error {
	if row.Len() != t.schema.Len() {
		return fmt.Errorf("colstore: table %q expects %d columns, got %d", t.name, t.schema.Len(), row.Len())
	}
	for i, v := range row {
		want := t.schema.Columns[i].Kind
		if v.IsNull() {
			continue
		}
		got := v.Kind()
		if got == want {
			continue
		}
		if got.Numeric() && want.Numeric() {
			continue
		}
		return fmt.Errorf("colstore: table %q column %d (%s) expects %s, got %s",
			t.name, i, t.schema.Columns[i].Name, want, got)
	}
	return nil
}

// Compile-time checks: the columnar table plugs in behind the row-store seams.
var (
	_ storage.Relation         = (*Table)(nil)
	_ storage.Versioned        = (*Table)(nil)
	_ storage.SegmentVersioned = (*Table)(nil)
)
