package colstore

import (
	"bytes"
	"fmt"
	"testing"

	"csq/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "Price", Kind: types.KindFloat},
		types.Column{Name: "Sym", Kind: types.KindString},
	)
}

func testRows(n int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := range rows {
		var sym types.Value
		if i%7 == 3 {
			sym = types.Null(types.KindString)
		} else {
			sym = types.NewString(fmt.Sprintf("SYM%02d", i%5))
		}
		rows[i] = types.Tuple{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i) / 4),
			sym,
		}
	}
	return rows
}

func encodeAll(t *testing.T, rows []types.Tuple) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, r := range rows {
		buf, err = types.EncodeTuple(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestRoundTrip inserts rows across several segments plus a buffered tail and
// verifies the iterator returns them byte-identically and in order.
func TestRoundTrip(t *testing.T) {
	tbl, err := Create(t.TempDir(), "quotes", testSchema(), Options{SegmentRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	rows := testRows(100) // 6 full segments + 4-row tail
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if got := tbl.RowCount(); got != 100 {
		t.Fatalf("RowCount = %d, want 100", got)
	}
	if got := tbl.Snapshot().NumSegments(); got != 6 {
		t.Fatalf("NumSegments = %d, want 6", got)
	}

	it := tbl.Iterator()
	if it.Len() != 100 {
		t.Fatalf("iterator Len = %d, want 100", it.Len())
	}
	var got []types.Tuple
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if err := it.(*rowIterator).Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(t, got), encodeAll(t, rows)) {
		t.Fatal("iterated rows differ from inserted rows")
	}

	// Batch path, reset first.
	it.Reset()
	var batched []types.Tuple
	dst := make([]types.Tuple, 7)
	for {
		n := it.NextBatch(dst)
		if n == 0 {
			break
		}
		batched = append(batched, dst[:n]...)
	}
	if !bytes.Equal(encodeAll(t, batched), encodeAll(t, rows)) {
		t.Fatal("batched rows differ from inserted rows")
	}
}

// TestReopen closes and reopens the table and verifies schema, rows and zone
// maps survive.
func TestReopen(t *testing.T) {
	dir := t.TempDir()
	tbl, err := Create(dir, "quotes", testSchema(), Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(30)
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil { // flushes the 6-row tail
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Name() != "quotes" {
		t.Fatalf("reopened name = %q", re.Name())
	}
	if !re.Schema().Equal(testSchema()) {
		t.Fatalf("reopened schema = %v", re.Schema())
	}
	if re.RowCount() != 30 {
		t.Fatalf("reopened RowCount = %d, want 30", re.RowCount())
	}
	snap := re.Snapshot()
	if snap.NumSegments() != 4 {
		t.Fatalf("reopened NumSegments = %d, want 4", snap.NumSegments())
	}
	zm := snap.ZoneMap(0, 0)
	if !zm.HasMinMax {
		t.Fatal("segment 0 column 0 has no zone map")
	}
	if min, _ := zm.Min.Int(); min != 0 {
		t.Fatalf("segment 0 min = %d, want 0", min)
	}
	if max, _ := zm.Max.Int(); max != 7 {
		t.Fatalf("segment 0 max = %d, want 7", max)
	}

	var got []types.Tuple
	it := re.Iterator()
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !bytes.Equal(encodeAll(t, got), encodeAll(t, rows)) {
		t.Fatal("reopened rows differ from inserted rows")
	}
}

// TestZoneMapPruning exercises SegmentMayMatch over every prunable operator.
func TestZoneMapPruning(t *testing.T) {
	tbl, err := Create(t.TempDir(), "quotes", testSchema(), Options{SegmentRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if err := tbl.InsertBatch(testRows(40)); err != nil { // col 0: [0..9][10..19][20..29][30..39]
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	if snap.NumSegments() != 4 {
		t.Fatalf("NumSegments = %d", snap.NumSegments())
	}
	cases := []struct {
		name string
		pred PrunePredicate
		want [4]bool // may-match per segment
	}{
		{"eq-15", PrunePredicate{Col: 0, Op: PruneEq, Value: types.NewInt(15)}, [4]bool{false, true, false, false}},
		{"lt-10", PrunePredicate{Col: 0, Op: PruneLt, Value: types.NewInt(10)}, [4]bool{true, false, false, false}},
		{"le-10", PrunePredicate{Col: 0, Op: PruneLe, Value: types.NewInt(10)}, [4]bool{true, true, false, false}},
		{"gt-29", PrunePredicate{Col: 0, Op: PruneGt, Value: types.NewInt(29)}, [4]bool{false, false, false, true}},
		{"ge-29", PrunePredicate{Col: 0, Op: PruneGe, Value: types.NewInt(29)}, [4]bool{false, false, true, true}},
		{"ne-5", PrunePredicate{Col: 0, Op: PruneNe, Value: types.NewInt(5)}, [4]bool{true, true, true, true}},
		{"eq-null", PrunePredicate{Col: 0, Op: PruneEq, Value: types.Null(types.KindInt)}, [4]bool{false, false, false, false}},
		{"float-cross-kind", PrunePredicate{Col: 0, Op: PruneLt, Value: types.NewFloat(9.5)}, [4]bool{true, false, false, false}},
	}
	for _, tc := range cases {
		for seg := 0; seg < 4; seg++ {
			got := snap.SegmentMayMatch(seg, []PrunePredicate{tc.pred})
			if got != tc.want[seg] {
				t.Errorf("%s: segment %d MayMatch = %v, want %v", tc.name, seg, got, tc.want[seg])
			}
		}
	}
}

// TestProjectedRead verifies ReadSegment decodes only the requested columns
// and reads fewer bytes doing so.
func TestProjectedRead(t *testing.T) {
	tbl, err := Create(t.TempDir(), "quotes", testSchema(), Options{SegmentRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	rows := testRows(32)
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	full, fullBytes, _, err := snap.ReadSegment(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, projBytes, _, err := snap.ReadSegment(0, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if projBytes >= fullBytes {
		t.Fatalf("projected read of %d bytes not smaller than full read of %d", projBytes, fullBytes)
	}
	for r := range rows {
		if len(full[r]) != 3 || len(proj[r]) != 3 {
			t.Fatalf("row %d: wrong width", r)
		}
		fs, _ := full[r][2].Str()
		ps, _ := proj[r][2].Str()
		if fs != ps || full[r][2].IsNull() != proj[r][2].IsNull() {
			t.Fatalf("row %d column 2 differs between full and projected read", r)
		}
		if !proj[r][0].IsNull() || !proj[r][1].IsNull() {
			t.Fatalf("row %d: unrequested columns are not NULL placeholders", r)
		}
	}
}

// TestSnapshotIsolation verifies a snapshot taken before inserts and flushes
// does not observe them.
func TestSnapshotIsolation(t *testing.T) {
	tbl, err := Create(t.TempDir(), "quotes", testSchema(), Options{SegmentRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	rows := testRows(12)
	if err := tbl.InsertBatch(rows[:10]); err != nil {
		t.Fatal(err)
	}
	it := tbl.Iterator()
	v1 := tbl.SegmentSetVersion()
	if err := tbl.InsertBatch(rows[10:]); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if v2 := tbl.SegmentSetVersion(); v2 == v1 {
		t.Fatalf("SegmentSetVersion unchanged across flush: %q", v2)
	}
	count := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Fatalf("snapshot saw %d rows, want 10", count)
	}
}

// TestDictCodecFallback checks both codecs appear on a table whose columns
// differ in redundancy: the low-cardinality string column should pick the
// dictionary form, the dense unique int column the plain form.
func TestDictCodecFallback(t *testing.T) {
	tbl, err := Create(t.TempDir(), "quotes", testSchema(), Options{SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	if err := tbl.InsertBatch(testRows(64)); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	var tag [1]byte
	codec := func(col int) byte {
		cm := snap.segs[0].cols[col]
		if _, err := tbl.dataF.ReadAt(tag[:], cm.off); err != nil {
			t.Fatal(err)
		}
		return tag[0]
	}
	if c := codec(0); c != codecPlain {
		t.Errorf("unique int column used codec %d, want plain", c)
	}
	if c := codec(2); c != codecDict {
		t.Errorf("5-distinct string column used codec %d, want dict", c)
	}
}
