package colstore

import (
	"fmt"

	"csq/internal/storage"
	"csq/internal/types"
)

// PruneOp is a comparison a zone map can evaluate against a constant.
type PruneOp uint8

// Prunable comparison operators, matching the row-level comparison semantics
// of the expression engine (NULL never compares true).
const (
	PruneEq PruneOp = iota
	PruneNe
	PruneLt
	PruneLe
	PruneGt
	PruneGe
)

// PrunePredicate is one conjunct of the form <column> <op> <constant> that a
// scan may use to skip whole segments via zone maps. It is advisory: a
// segment that survives pruning still has the full row-level predicate
// applied above the scan, so pruning only needs to be conservative (never
// skip a segment that could contain a matching row).
type PrunePredicate struct {
	Col   int
	Op    PruneOp
	Value types.Value
}

// Snapshot is a consistent view of a table's segments and buffered tail, the
// read surface of the vectorized columnar scan. Snapshots stay valid across
// concurrent inserts and flushes (segments are immutable and the tail prefix
// is never mutated in place), but not across Close.
type Snapshot struct {
	t    *Table
	segs []segmentMeta
	tail []types.Tuple
}

// Snapshot captures the current segments and tail.
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &Snapshot{
		t:    t,
		segs: t.segs[:len(t.segs):len(t.segs)],
		tail: t.tail[:len(t.tail):len(t.tail)],
	}
}

// NumSegments returns the number of on-disk segments in the snapshot.
func (s *Snapshot) NumSegments() int { return len(s.segs) }

// SegmentRowCount returns the number of rows of segment i.
func (s *Snapshot) SegmentRowCount(i int) int { return s.segs[i].rows }

// SegmentBytes returns the on-disk size of segment i restricted to the given
// columns (all columns when cols is nil).
func (s *Snapshot) SegmentBytes(i int, cols []int) int64 {
	var n int64
	if cols == nil {
		for _, cm := range s.segs[i].cols {
			n += cm.size
		}
		return n
	}
	for _, c := range cols {
		n += s.segs[i].cols[c].size
	}
	return n
}

// ZoneMap returns the zone map of column col of segment i.
func (s *Snapshot) ZoneMap(i, col int) ZoneMap { return s.segs[i].cols[col].zm }

// Tail returns the buffered rows not yet flushed to a segment. Zone maps do
// not cover them; a scan emits them after the segments.
func (s *Snapshot) Tail() []types.Tuple { return s.tail }

// TotalRows returns the number of rows the snapshot covers.
func (s *Snapshot) TotalRows() int {
	n := len(s.tail)
	for _, seg := range s.segs {
		n += seg.rows
	}
	return n
}

// SegmentMayMatch reports whether segment i could contain a row satisfying
// every predicate. It errs on the side of true: only a zone map that proves
// no row can match lets the scan skip the segment.
func (s *Snapshot) SegmentMayMatch(i int, preds []PrunePredicate) bool {
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(s.segs[i].cols) {
			continue
		}
		if !zoneMayMatch(s.segs[i].cols[p.Col].zm, p) {
			return false
		}
	}
	return true
}

// zoneMayMatch evaluates one predicate against one zone map.
func zoneMayMatch(zm ZoneMap, p PrunePredicate) bool {
	if zm.Rows == 0 {
		return false
	}
	// A comparison is never true on a NULL operand: a constant NULL matches
	// nothing, and a column that is entirely NULL matches nothing.
	if p.Value.IsNull() || zm.Nulls == zm.Rows {
		return false
	}
	if !zm.HasMinMax {
		return true
	}
	cmpMin, err := types.Compare(zm.Min, p.Value)
	if err != nil {
		return true // incomparable kinds: cannot prove anything
	}
	cmpMax, err := types.Compare(zm.Max, p.Value)
	if err != nil {
		return true
	}
	switch p.Op {
	case PruneEq:
		return cmpMin <= 0 && cmpMax >= 0
	case PruneNe:
		// Only an all-equal segment (min == max == v, no nulls) cannot
		// contain a differing row.
		return !(cmpMin == 0 && cmpMax == 0 && zm.Nulls == 0)
	case PruneLt:
		return cmpMin < 0
	case PruneLe:
		return cmpMin <= 0
	case PruneGt:
		return cmpMax > 0
	case PruneGe:
		return cmpMax >= 0
	default:
		return true
	}
}

// ReadSegment materializes segment i as full-width tuples, decoding only the
// given columns (all when cols is nil); positions of unrequested columns are
// left as NULL placeholders. It returns the tuples, which stay valid
// indefinitely, and the number of on-disk bytes read.
func (s *Snapshot) ReadSegment(i int, cols []int, buf []byte) ([]types.Tuple, int64, []byte, error) {
	seg := s.segs[i]
	width := s.t.schema.Len()
	arena := make([]types.Value, seg.rows*width)
	tuples := make([]types.Tuple, seg.rows)
	for r := range tuples {
		tuples[r] = types.Tuple(arena[r*width : (r+1)*width : (r+1)*width])
	}
	want := cols
	if want == nil {
		want = make([]int, width)
		for c := range want {
			want[c] = c
		}
	}
	var bytesRead int64
	for _, col := range want {
		if col < 0 || col >= width {
			return nil, 0, buf, fmt.Errorf("colstore: column %d out of range", col)
		}
		cm := seg.cols[col]
		if int64(cap(buf)) < cm.size {
			buf = make([]byte, cm.size)
		}
		chunk := buf[:cm.size]
		if _, err := s.t.dataF.ReadAt(chunk, cm.off); err != nil {
			return nil, 0, buf, fmt.Errorf("colstore: read segment %d column %d: %w", i, col, err)
		}
		bytesRead += cm.size
		vals, err := decodeColumnChunk(chunk, seg.rows)
		if err != nil {
			return nil, 0, buf, fmt.Errorf("colstore: segment %d: %w", i, err)
		}
		for r, v := range vals {
			tuples[r][col] = v[0]
		}
	}
	return tuples, bytesRead, buf, nil
}

// Iterator implements storage.Relation with a row-at-a-time view over a
// snapshot: segments are decoded lazily, one at a time, then the tail is
// emitted. Disk errors end the iteration early; Err reports them (the
// vectorized ColumnarScan in the execution engine is the error-aware path).
func (t *Table) Iterator() storage.RowIterator {
	return &rowIterator{snap: t.Snapshot()}
}

type rowIterator struct {
	snap     *Snapshot
	seg      int           // next segment to decode
	cur      []types.Tuple // decoded rows of the current segment (or the tail)
	pos      int
	buf      []byte
	tailDone bool
	err      error
}

// Next implements storage.RowIterator.
func (it *rowIterator) Next() (types.Tuple, bool) {
	for {
		if it.pos < len(it.cur) {
			t := it.cur[it.pos]
			it.pos++
			return t, true
		}
		if !it.advance() {
			return nil, false
		}
	}
}

// NextBatch implements storage.RowIterator.
func (it *rowIterator) NextBatch(dst []types.Tuple) int {
	filled := 0
	for filled < len(dst) {
		if it.pos < len(it.cur) {
			n := copy(dst[filled:], it.cur[it.pos:])
			filled += n
			it.pos += n
			continue
		}
		if !it.advance() {
			break
		}
	}
	return filled
}

// advance loads the next non-empty segment (or the tail) into cur.
func (it *rowIterator) advance() bool {
	if it.err != nil {
		return false
	}
	it.pos = 0
	for it.seg < len(it.snap.segs) {
		i := it.seg
		it.seg++
		tuples, _, buf, err := it.snap.ReadSegment(i, nil, it.buf)
		it.buf = buf
		if err != nil {
			it.err = err
			it.cur = nil
			return false
		}
		if len(tuples) > 0 {
			it.cur = tuples
			return true
		}
	}
	if !it.tailDone {
		it.tailDone = true
		it.cur = it.snap.tail
		return len(it.cur) > 0
	}
	it.cur = nil
	return false
}

// Reset implements storage.RowIterator.
func (it *rowIterator) Reset() {
	it.seg, it.pos, it.cur, it.tailDone, it.err = 0, 0, nil, false, nil
}

// Len implements storage.RowIterator.
func (it *rowIterator) Len() int { return it.snap.TotalRows() }

// Err returns the first disk error the iterator hit, if any.
func (it *rowIterator) Err() error { return it.err }
