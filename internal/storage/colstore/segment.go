package colstore

import (
	"encoding/binary"
	"fmt"

	"csq/internal/types"
	"csq/internal/wire"
)

// Column-chunk codec. Each column of a segment is encoded independently as
// one tag byte followed by the wire layer's batch encoding of the column
// values, viewed as a batch of one-column tuples:
//
//	codecPlain: wire plain tuple-batch encoding
//	codecDict:  wire per-batch dictionary encoding
//
// The choice is made per chunk by wire.AppendTupleBatchAuto — exactly the
// auto fallback the wire uses per frame — so a low-cardinality column pays
// one value encoding per distinct value while a high-cardinality one never
// pays dictionary overhead. The 16-byte SessionID/Seq header of the wire
// format is written as zeros and ignored on read.
const (
	codecPlain byte = 0
	codecDict  byte = 1
)

// encodeSegment encodes the rows as one segment starting at dataOff in the
// data file: it returns the segment metadata (offsets, sizes, zone maps), the
// concatenated column-chunk bytes to append to the data file, and the encoded
// index record for the zone-map file.
func encodeSegment(schema *types.Schema, rows []types.Tuple, dataOff int64) (segmentMeta, []byte, []byte, error) {
	width := schema.Len()
	seg := segmentMeta{rows: len(rows), cols: make([]colMeta, width)}
	var data []byte
	colVals := make([]types.Value, len(rows))
	colTuples := make([]types.Tuple, len(rows))
	for col := 0; col < width; col++ {
		zm := ZoneMap{Rows: len(rows)}
		comparable := schema.Columns[col].Kind.Comparable()
		for i, r := range rows {
			v := r[col]
			colVals[i] = v
			colTuples[i] = colVals[i : i+1 : i+1]
			switch {
			case v.IsNull():
				zm.Nulls++
			case !comparable:
				// Non-comparable kinds carry no min/max; never pruned.
			case !zm.HasMinMax:
				zm.Min, zm.Max, zm.HasMinMax = v, v, true
			default:
				if c, err := types.Compare(v, zm.Min); err != nil {
					zm.HasMinMax = false
					comparable = false // cross-kind column: stop maintaining
				} else if c < 0 {
					zm.Min = v
				}
				if !zm.HasMinMax {
					continue
				}
				if c, err := types.Compare(v, zm.Max); err != nil {
					zm.HasMinMax = false
					comparable = false
				} else if c > 0 {
					zm.Max = v
				}
			}
		}
		start := len(data)
		data = append(data, codecPlain) // placeholder, patched below
		payload, usedDict, err := wire.AppendTupleBatchAuto(data, &wire.TupleBatch{Tuples: colTuples})
		if err != nil {
			return segmentMeta{}, nil, nil, fmt.Errorf("colstore: encode column %d: %w", col, err)
		}
		data = payload
		if usedDict {
			data[start] = codecDict
		}
		seg.cols[col] = colMeta{
			off:  dataOff + int64(start),
			size: int64(len(data) - start),
			zm:   zm,
		}
	}
	idxRec, err := encodeSegmentMeta(seg)
	if err != nil {
		return segmentMeta{}, nil, nil, err
	}
	return seg, data, idxRec, nil
}

// decodeColumnChunk decodes one column chunk (tag byte + wire batch) into the
// per-row values of the column. The returned values alias a freshly allocated
// arena and stay valid indefinitely.
func decodeColumnChunk(raw []byte, wantRows int) ([]types.Tuple, error) {
	if len(raw) < 1 {
		return nil, fmt.Errorf("colstore: empty column chunk")
	}
	var b wire.TupleBatch
	var err error
	switch raw[0] {
	case codecPlain:
		err = wire.DecodeTupleBatchInto(&b, raw[1:])
	case codecDict:
		err = wire.DecodeDictBatchInto(&b, raw[1:])
	default:
		return nil, fmt.Errorf("colstore: unknown column codec %d", raw[0])
	}
	if err != nil {
		return nil, fmt.Errorf("colstore: decode column chunk: %w", err)
	}
	if len(b.Tuples) != wantRows {
		return nil, fmt.Errorf("colstore: column chunk has %d rows, segment expects %d", len(b.Tuples), wantRows)
	}
	for i, t := range b.Tuples {
		if len(t) != 1 {
			return nil, fmt.Errorf("colstore: column chunk row %d has %d values", i, len(t))
		}
	}
	return b.Tuples, nil
}

// encodeSegmentMeta renders one zone-map index record (without its length
// prefix): rowCount, then per column offset, size, nulls, and the optional
// min/max pair.
func encodeSegmentMeta(seg segmentMeta) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(seg.rows))
	for col, cm := range seg.cols {
		out = binary.AppendUvarint(out, uint64(cm.off))
		out = binary.AppendUvarint(out, uint64(cm.size))
		out = binary.AppendUvarint(out, uint64(cm.zm.Nulls))
		if !cm.zm.HasMinMax {
			out = append(out, 0)
			continue
		}
		out = append(out, 1)
		var err error
		if out, err = types.EncodeValue(out, cm.zm.Min); err != nil {
			return nil, fmt.Errorf("colstore: encode zone map of column %d: %w", col, err)
		}
		if out, err = types.EncodeValue(out, cm.zm.Max); err != nil {
			return nil, fmt.Errorf("colstore: encode zone map of column %d: %w", col, err)
		}
	}
	return out, nil
}

// decodeSegmentMeta parses one index record. dataEnd bounds the chunk extents
// against the data file actually on disk.
func decodeSegmentMeta(raw []byte, width int, dataEnd int64) (segmentMeta, error) {
	rows, c := binary.Uvarint(raw)
	if c <= 0 || rows > maxMetaEntry {
		return segmentMeta{}, fmt.Errorf("bad row count")
	}
	raw = raw[c:]
	seg := segmentMeta{rows: int(rows), cols: make([]colMeta, width)}
	for col := 0; col < width; col++ {
		var vals [3]uint64
		for i := range vals {
			v, c := binary.Uvarint(raw)
			if c <= 0 {
				return segmentMeta{}, fmt.Errorf("truncated column %d", col)
			}
			vals[i], raw = v, raw[c:]
		}
		cm := colMeta{
			off:  int64(vals[0]),
			size: int64(vals[1]),
			zm:   ZoneMap{Rows: int(rows), Nulls: int(vals[2])},
		}
		if cm.off < 0 || cm.size <= 0 || cm.off+cm.size > dataEnd {
			return segmentMeta{}, fmt.Errorf("column %d extent [%d,%d) outside data file of %d bytes",
				col, cm.off, cm.off+cm.size, dataEnd)
		}
		if len(raw) == 0 {
			return segmentMeta{}, fmt.Errorf("truncated column %d", col)
		}
		hasMinMax := raw[0]
		raw = raw[1:]
		if hasMinMax == 1 {
			var err error
			var used int
			if cm.zm.Min, used, err = types.DecodeValue(raw); err != nil {
				return segmentMeta{}, fmt.Errorf("column %d min: %w", col, err)
			}
			raw = raw[used:]
			if cm.zm.Max, used, err = types.DecodeValue(raw); err != nil {
				return segmentMeta{}, fmt.Errorf("column %d max: %w", col, err)
			}
			raw = raw[used:]
			cm.zm.HasMinMax = true
		}
		seg.cols[col] = cm
	}
	if len(raw) != 0 {
		return segmentMeta{}, fmt.Errorf("%d trailing bytes", len(raw))
	}
	return seg, nil
}
