package storage

import (
	"fmt"
	"sort"

	"csq/internal/types"
)

// HashIndex is an equality index over a set of key columns of a heap table.
// It is built eagerly over a snapshot; the paper's UDF-as-virtual-table model
// treats the UDF as a relation with exactly this kind of "indexed access on
// the key value", so the same interface serves both stored tables and cached
// UDF results.
type HashIndex struct {
	keyOrdinals []int
	buckets     map[string][]types.Tuple
	entries     int
}

// BuildHashIndex builds a hash index over the table snapshot on the given key
// columns.
func BuildHashIndex(t *HeapTable, keyOrdinals []int) (*HashIndex, error) {
	if len(keyOrdinals) == 0 {
		return nil, fmt.Errorf("storage: hash index needs at least one key column")
	}
	for _, o := range keyOrdinals {
		if o < 0 || o >= t.Schema().Len() {
			return nil, fmt.Errorf("storage: hash index key ordinal %d out of range", o)
		}
	}
	idx := &HashIndex{
		keyOrdinals: append([]int(nil), keyOrdinals...),
		buckets:     make(map[string][]types.Tuple),
	}
	it := t.Iterator()
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		idx.insert(row)
	}
	return idx, nil
}

// NewHashIndex returns an empty hash index for manual population (used by the
// UDF result cache in the execution engine).
func NewHashIndex(keyOrdinals []int) *HashIndex {
	return &HashIndex{
		keyOrdinals: append([]int(nil), keyOrdinals...),
		buckets:     make(map[string][]types.Tuple),
	}
}

func (idx *HashIndex) insert(row types.Tuple) {
	k := row.Key(idx.keyOrdinals)
	idx.buckets[k] = append(idx.buckets[k], row)
	idx.entries++
}

// Insert adds a row to the index.
func (idx *HashIndex) Insert(row types.Tuple) { idx.insert(row) }

// Probe returns all rows whose key columns equal those of the probe tuple
// (compared on probeOrdinals of the probe).
func (idx *HashIndex) Probe(probe types.Tuple, probeOrdinals []int) []types.Tuple {
	return idx.buckets[probe.Key(probeOrdinals)]
}

// ProbeKey returns all rows matching the pre-computed key string.
func (idx *HashIndex) ProbeKey(key string) []types.Tuple { return idx.buckets[key] }

// Len returns the number of indexed rows.
func (idx *HashIndex) Len() int { return idx.entries }

// DistinctKeys returns the number of distinct key values in the index.
func (idx *HashIndex) DistinctKeys() int { return len(idx.buckets) }

// SortedIndex is an ordered index over key columns, supporting ordered scans
// and merge joins. It materialises and sorts a snapshot of the table.
type SortedIndex struct {
	keyOrdinals []int
	rows        []types.Tuple
}

// BuildSortedIndex sorts a snapshot of the table on the key columns.
func BuildSortedIndex(t *HeapTable, keyOrdinals []int) (*SortedIndex, error) {
	if len(keyOrdinals) == 0 {
		return nil, fmt.Errorf("storage: sorted index needs at least one key column")
	}
	for _, o := range keyOrdinals {
		if o < 0 || o >= t.Schema().Len() {
			return nil, fmt.Errorf("storage: sorted index key ordinal %d out of range", o)
		}
	}
	it := t.Iterator()
	rows := make([]types.Tuple, 0, it.Len())
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	idx := &SortedIndex{keyOrdinals: append([]int(nil), keyOrdinals...), rows: rows}
	var sortErr error
	sort.SliceStable(idx.rows, func(i, j int) bool {
		c, err := types.CompareOn(idx.rows[i], idx.rows[j], idx.keyOrdinals)
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, fmt.Errorf("storage: sorted index: %w", sortErr)
	}
	return idx, nil
}

// Len returns the number of indexed rows.
func (idx *SortedIndex) Len() int { return len(idx.rows) }

// Scan returns an iterator over the rows in key order.
func (idx *SortedIndex) Scan() *TableIterator {
	return NewSliceIterator(idx.rows)
}

// SeekGE returns the position of the first row whose key is >= the probe's
// key columns (given by probeOrdinals), and whether such a row exists.
func (idx *SortedIndex) SeekGE(probe types.Tuple, probeOrdinals []int) (int, bool) {
	lo, hi := 0, len(idx.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		c := compareKeys(idx.rows[mid], idx.keyOrdinals, probe, probeOrdinals)
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(idx.rows)
}

// Lookup returns all rows whose key equals the probe's key columns.
func (idx *SortedIndex) Lookup(probe types.Tuple, probeOrdinals []int) []types.Tuple {
	start, ok := idx.SeekGE(probe, probeOrdinals)
	if !ok {
		return nil
	}
	var out []types.Tuple
	for i := start; i < len(idx.rows); i++ {
		if compareKeys(idx.rows[i], idx.keyOrdinals, probe, probeOrdinals) != 0 {
			break
		}
		out = append(out, idx.rows[i])
	}
	return out
}

// Row returns the row at position i.
func (idx *SortedIndex) Row(i int) types.Tuple { return idx.rows[i] }

func compareKeys(a types.Tuple, aOrds []int, b types.Tuple, bOrds []int) int {
	n := len(aOrds)
	if len(bOrds) < n {
		n = len(bOrds)
	}
	for i := 0; i < n; i++ {
		c, err := types.Compare(a[aOrds[i]], b[bOrds[i]])
		if err != nil {
			// Kind mismatches order by kind to keep the order total.
			if a[aOrds[i]].Kind() < b[bOrds[i]].Kind() {
				return -1
			}
			return 1
		}
		if c != 0 {
			return c
		}
	}
	return 0
}
