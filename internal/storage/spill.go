package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Spill runs: length-prefixed record files backing the execution engine's
// Grace-style partitioning. A RunWriter appends records to a temporary file;
// Finish rewinds the same descriptor into a RunReader that replays the
// records in append order.
//
// Two lifecycles exist. NewRunWriter unlinks the file immediately after
// creation (anonymous: the descriptor is the only reference, so a crashed
// process leaks nothing, but nothing is observable either). NewRetainedRunWriter
// keeps the file named inside a per-query spill namespace directory — the
// run is visible to operators and accounting, is removed when the writer or
// its reader closes, and a crash leaves it behind for the startup sweep
// (SweepSpillDirs) to reclaim.
//
// Records are opaque byte strings — the execution layer encodes tuples (and,
// for order-preserving join spills, sequence prefixes) with the deterministic
// types encoding, so replaying a run reproduces exactly the bytes written.

// RunWriter appends length-prefixed records to a temporary spill file.
type RunWriter struct {
	f    *os.File
	bw   *bufio.Writer
	path string // non-empty for retained runs; removed on Discard/reader Close
	size int64
	recs int64
}

// NewRunWriter creates a spill run in dir (the system temp directory when
// empty). The backing file is unlinked immediately: it lives exactly as long
// as the writer (or the reader Finish hands it to) holds the descriptor.
func NewRunWriter(dir string) (*RunWriter, error) {
	f, err := os.CreateTemp(dir, "csq-spill-*.run")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill run: %w", err)
	}
	// Unlink now; the descriptor keeps the data reachable. Nothing to clean
	// up even if the process dies mid-spill.
	if err := os.Remove(f.Name()); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: unlink spill run: %w", err)
	}
	return &RunWriter{f: f, bw: bufio.NewWriterSize(f, 64<<10)}, nil
}

// NewRetainedRunWriter creates a named spill run in dir. The file stays
// linked until the writer (or the reader Finish hands it to) is closed; a
// process killed mid-spill leaves it on disk inside its query's namespace
// directory, where the next startup's SweepSpillDirs reclaims it.
func NewRetainedRunWriter(dir string) (*RunWriter, error) {
	f, err := os.CreateTemp(dir, "csq-spill-*.run")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill run: %w", err)
	}
	return &RunWriter{f: f, bw: bufio.NewWriterSize(f, 64<<10), path: f.Name()}, nil
}

// Append writes one record.
func (w *RunWriter) Append(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return fmt.Errorf("storage: spill write: %w", err)
	}
	if _, err := w.bw.Write(rec); err != nil {
		return fmt.Errorf("storage: spill write: %w", err)
	}
	w.size += int64(n + len(rec))
	w.recs++
	return nil
}

// Bytes returns the number of bytes appended so far (including prefixes).
func (w *RunWriter) Bytes() int64 { return w.size }

// Records returns the number of records appended so far.
func (w *RunWriter) Records() int64 { return w.recs }

// Finish flushes the run and rewinds it into a reader. The writer must not be
// used afterwards; closing the reader releases the file.
func (w *RunWriter) Finish() (*RunReader, error) {
	if err := w.bw.Flush(); err != nil {
		return nil, fmt.Errorf("storage: spill flush: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("storage: spill rewind: %w", err)
	}
	r := &RunReader{f: w.f, br: bufio.NewReaderSize(w.f, 64<<10), path: w.path, recs: w.recs}
	w.f, w.bw, w.path = nil, nil, ""
	return r, nil
}

// Discard releases the run without reading it (error paths); retained runs
// are removed from disk.
func (w *RunWriter) Discard() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	if w.path != "" {
		_ = os.Remove(w.path)
	}
	w.f, w.bw, w.path = nil, nil, ""
	return err
}

// RunReader replays the records of a finished spill run in append order.
type RunReader struct {
	f    *os.File
	br   *bufio.Reader
	path string
	buf  []byte
	recs int64
}

// Next returns the next record, or io.EOF at the end of the run. The returned
// slice is only valid until the next call.
func (r *RunReader) Next() ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("storage: spill read: %w", err)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("storage: spill record of %d bytes exceeds limit", n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("storage: spill read: %w", err)
	}
	return buf, nil
}

// Records returns the total number of records in the run.
func (r *RunReader) Records() int64 { return r.recs }

// Close releases the run's file; retained runs are removed from disk.
func (r *RunReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	if r.path != "" {
		_ = os.Remove(r.path)
	}
	r.f, r.br, r.path = nil, nil, ""
	return err
}
