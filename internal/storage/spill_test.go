package storage

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"csq/internal/types"
)

func TestRunWriterRoundTrip(t *testing.T) {
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 1000; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%64)))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 1000 {
		t.Fatalf("writer records = %d, want 1000", w.Records())
	}
	if w.Bytes() <= 0 {
		t.Fatalf("writer bytes = %d", w.Bytes())
	}
	r, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Records() != 1000 {
		t.Fatalf("reader records = %d, want 1000", r.Records())
	}
	for i, wantRec := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(rec, wantRec) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF after the last record, got %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWriterEmptyRun(t *testing.T) {
	w, err := NewRunWriter("")
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty run Next = %v, want io.EOF", err)
	}
}

func TestRunWriterDiscard(t *testing.T) {
	w, err := NewRunWriter("")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Discard(); err != nil {
		t.Fatal(err)
	}
	// Discard is idempotent.
	if err := w.Discard(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWriterZeroLengthRecords(t *testing.T) {
	w, err := NewRunWriter("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(nil); err != nil {
			t.Fatal(err)
		}
	}
	r, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 3; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(rec) != 0 {
			t.Fatalf("record %d has %d bytes, want 0", i, len(rec))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestHeapTableVersionAdvances(t *testing.T) {
	table, err := NewHeapTable("v", types.NewSchema(types.Column{Name: "K", Kind: types.KindInt}))
	if err != nil {
		t.Fatal(err)
	}
	v0 := table.Version()
	if err := table.Insert(types.NewTuple(types.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	v1 := table.Version()
	if v1 == v0 {
		t.Fatalf("insert did not advance the version")
	}
	table.Truncate()
	if table.Version() == v1 {
		t.Fatalf("truncate did not advance the version")
	}
}
