package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// Per-query spill namespaces. When the operator configures a spill directory
// (udfserverd -spill-dir), each query's retained spill runs live inside one
// directory named after the owning process and query:
//
//	<root>/csq-q<pid>-<queryID>.spill/csq-spill-*.run
//
// A query that finishes (however it finishes) removes its namespace. A
// process that dies mid-spill cannot — so every daemon startup sweeps the
// root and reclaims the namespaces of processes that no longer exist. The
// pid in the name makes the sweep safe for roots shared by several live
// server processes: only dead owners' directories are removed.

// spillNSPrefix and spillNSSuffix frame a namespace directory name.
const (
	spillNSPrefix = "csq-q"
	spillNSSuffix = ".spill"
)

// SpillNamespace returns the namespace directory path for a query of the
// current process.
func SpillNamespace(root string, queryID uint64) string {
	return filepath.Join(root, fmt.Sprintf("%s%d-%d%s", spillNSPrefix, os.Getpid(), queryID, spillNSSuffix))
}

// CreateSpillNamespace creates (and returns) the query's namespace directory.
func CreateSpillNamespace(root string, queryID uint64) (string, error) {
	dir := SpillNamespace(root, queryID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("storage: create spill namespace: %w", err)
	}
	return dir, nil
}

// RemoveSpillNamespace deletes a query's namespace directory and everything
// in it. Missing directories are not an error.
func RemoveSpillNamespace(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("storage: remove spill namespace: %w", err)
	}
	return nil
}

// parseSpillNamespace extracts the owning pid from a namespace directory
// name; ok is false for names that are not spill namespaces.
func parseSpillNamespace(name string) (pid int, ok bool) {
	if !strings.HasPrefix(name, spillNSPrefix) || !strings.HasSuffix(name, spillNSSuffix) {
		return 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, spillNSPrefix), spillNSSuffix)
	dash := strings.IndexByte(body, '-')
	if dash <= 0 {
		return 0, false
	}
	pid, err := strconv.Atoi(body[:dash])
	if err != nil || pid <= 0 {
		return 0, false
	}
	if _, err := strconv.ParseUint(body[dash+1:], 10, 64); err != nil {
		return 0, false
	}
	return pid, true
}

// pidAlive reports whether a process with the given pid exists. Signal 0
// probes existence without delivering anything; EPERM still means "exists".
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}

// SweepSpillDirs reclaims orphaned spill namespaces under root: every
// namespace directory whose owning process is no longer alive is removed,
// along with whatever runs a crash left inside it. Namespaces of live
// processes (including this one) are untouched. It returns the reclaimed
// directory names and the total bytes of run data they held. A missing root
// sweeps nothing.
func SweepSpillDirs(root string) (removed []string, bytes int64, err error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("storage: sweep spill dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pid, ok := parseSpillNamespace(e.Name())
		if !ok || pidAlive(pid) {
			continue
		}
		dir := filepath.Join(root, e.Name())
		bytes += dirSize(dir)
		if rerr := os.RemoveAll(dir); rerr != nil {
			return removed, bytes, fmt.Errorf("storage: sweep spill dir: %w", rerr)
		}
		removed = append(removed, e.Name())
	}
	return removed, bytes, nil
}

// dirSize sums the sizes of the regular files directly inside dir (spill
// namespaces are flat). Errors are ignored: the sweep is best-effort
// accounting over a directory it is about to delete.
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}
