package storage

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

func TestRetainedRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRetainedRunWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	r, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Retained runs stay linked while open — a crash here would leave the
	// file for the sweep.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("retained run left %d files on disk while open, want 1", len(files))
	}
	rec, err := r.Next()
	if err != nil || string(rec) != "alpha" {
		t.Fatalf("Next = %q, %v; want alpha", rec, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = os.ReadDir(dir)
	if len(files) != 0 {
		t.Fatalf("reader Close left %d files, want 0", len(files))
	}

	// Discard also removes the file.
	w2, err := NewRetainedRunWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Discard(); err != nil {
		t.Fatal(err)
	}
	files, _ = os.ReadDir(dir)
	if len(files) != 0 {
		t.Fatalf("Discard left %d files, want 0", len(files))
	}
}

func TestSpillNamespaceNamesRoundTrip(t *testing.T) {
	root := t.TempDir()
	dir, err := CreateSpillNamespace(root, 42)
	if err != nil {
		t.Fatal(err)
	}
	if dir != SpillNamespace(root, 42) {
		t.Fatalf("CreateSpillNamespace dir %q != SpillNamespace %q", dir, SpillNamespace(root, 42))
	}
	pid, ok := parseSpillNamespace(filepath.Base(dir))
	if !ok || pid != os.Getpid() {
		t.Fatalf("parse(%q) = %d, %v; want this pid", filepath.Base(dir), pid, ok)
	}
	for _, bad := range []string{
		"csq-q.spill", "csq-q-1.spill", "csq-q0-1.spill", "csq-qx-1.spill",
		"csq-q12-x.spill", "csq-q12-3", "other-12-3.spill", "csq-q-12-3",
	} {
		if _, ok := parseSpillNamespace(bad); ok {
			t.Fatalf("parse accepted junk name %q", bad)
		}
	}
	if err := RemoveSpillNamespace(dir); err != nil {
		t.Fatal(err)
	}
	if err := RemoveSpillNamespace(dir); err != nil {
		t.Fatalf("removing a missing namespace errored: %v", err)
	}
	if err := RemoveSpillNamespace(""); err != nil {
		t.Fatalf("removing the empty namespace errored: %v", err)
	}
}

// deadPid returns the pid of a process that has already exited.
func deadPid(t *testing.T) int {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn helper process: %v", err)
	}
	return cmd.ProcessState.Pid()
}

func TestSweepSpillDirs(t *testing.T) {
	root := t.TempDir()

	// A namespace owned by this (live) process, holding one run.
	liveDir, err := CreateSpillNamespace(root, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A namespace owned by a dead process, holding orphaned run data.
	dead := deadPid(t)
	deadName := "csq-q" + strconv.Itoa(dead) + "-9.spill"
	deadDir := filepath.Join(root, deadName)
	if err := os.Mkdir(deadDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(deadDir, "csq-spill-1.run"), make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated entries the sweep must not touch.
	if err := os.Mkdir(filepath.Join(root, "notours"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, bytes, err := SweepSpillDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != deadName {
		t.Fatalf("sweep removed %v, want exactly %q", removed, deadName)
	}
	if bytes != 4096 {
		t.Fatalf("sweep reported %d reclaimed bytes, want 4096", bytes)
	}
	if _, err := os.Stat(deadDir); !os.IsNotExist(err) {
		t.Fatalf("dead namespace still on disk")
	}
	for _, keep := range []string{liveDir, filepath.Join(root, "notours"), filepath.Join(root, "stray.txt")} {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("sweep touched %s: %v", keep, err)
		}
	}

	// Missing root sweeps nothing.
	if removed, _, err := SweepSpillDirs(filepath.Join(root, "missing")); err != nil || len(removed) != 0 {
		t.Fatalf("sweep of missing root = %v, %v; want clean no-op", removed, err)
	}
}
