package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"csq/internal/types"
)

func quotesSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "Name", Kind: types.KindString},
		types.Column{Name: "Close", Kind: types.KindFloat},
		types.Column{Name: "Quotes", Kind: types.KindTimeSeries},
	)
}

func sampleRow(name string, close float64) types.Tuple {
	return types.NewTuple(
		types.NewString(name),
		types.NewFloat(close),
		types.NewTimeSeries(types.NewSeries(close-1, close)),
	)
}

func TestHeapTableBasics(t *testing.T) {
	tbl, err := NewHeapTable("StockQuotes", quotesSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "StockQuotes" {
		t.Errorf("Name = %q", tbl.Name())
	}
	if tbl.RowCount() != 0 || tbl.AvgRowSize() != 0 {
		t.Error("new table should be empty")
	}
	rows := []types.Tuple{sampleRow("ACME", 20), sampleRow("BOLT", 31), sampleRow("ACME", 20)}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Errorf("RowCount = %d", tbl.RowCount())
	}
	if tbl.AvgRowSize() <= 0 {
		t.Error("AvgRowSize should be positive")
	}
	it := tbl.Iterator()
	if it.Len() != 3 {
		t.Errorf("iterator Len = %d", it.Len())
	}
	count := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("iterated %d rows", count)
	}
	it.Reset()
	if _, ok := it.Next(); !ok {
		t.Error("Reset should rewind the iterator")
	}
	tbl.Truncate()
	if tbl.RowCount() != 0 {
		t.Error("Truncate should empty the table")
	}
}

func TestHeapTableValidation(t *testing.T) {
	if _, err := NewHeapTable("", quotesSchema()); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewHeapTable("x", types.NewSchema()); err == nil {
		t.Error("empty schema should fail")
	}
	tbl, _ := NewHeapTable("R", quotesSchema())
	if err := tbl.Insert(types.NewTuple(types.NewString("x"))); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := tbl.Insert(types.NewTuple(types.NewInt(1), types.NewFloat(1), types.NewTimeSeries(nil))); err == nil {
		t.Error("wrong kind should fail")
	}
	// NULLs of any declared kind and numeric widening are accepted.
	if err := tbl.Insert(types.NewTuple(types.Null(types.KindString), types.NewInt(3), types.NewTimeSeries(nil))); err != nil {
		t.Errorf("NULL + numeric widening insert: %v", err)
	}
}

func TestHeapTableSnapshotIsolation(t *testing.T) {
	tbl, _ := NewHeapTable("R", quotesSchema())
	_ = tbl.Insert(sampleRow("A", 1))
	it := tbl.Iterator()
	_ = tbl.Insert(sampleRow("B", 2))
	if it.Len() != 1 {
		t.Errorf("iterator should see the snapshot taken at creation, got %d rows", it.Len())
	}
	if tbl.RowCount() != 2 {
		t.Errorf("table should now have 2 rows")
	}
}

func TestHeapTableStats(t *testing.T) {
	tbl, _ := NewHeapTable("R", quotesSchema())
	for i := 0; i < 10; i++ {
		// 5 distinct names, all-distinct closes.
		_ = tbl.Insert(sampleRow(fmt.Sprintf("N%d", i%5), float64(i)))
	}
	stats := tbl.Stats()
	if stats.RowCount != 10 {
		t.Errorf("RowCount = %d", stats.RowCount)
	}
	if stats.DistinctFraction[0] != 0.5 {
		t.Errorf("name distinct fraction = %g, want 0.5", stats.DistinctFraction[0])
	}
	if stats.DistinctFraction[1] != 1.0 {
		t.Errorf("close distinct fraction = %g, want 1", stats.DistinctFraction[1])
	}
	if d := tbl.DistinctFractionOn([]int{0}); d != 0.5 {
		t.Errorf("DistinctFractionOn(name) = %g", d)
	}
	if d := tbl.DistinctFractionOn([]int{0, 1}); d != 1.0 {
		t.Errorf("DistinctFractionOn(name,close) = %g", d)
	}
	empty, _ := NewHeapTable("E", quotesSchema())
	if empty.DistinctFractionOn([]int{0}) != 1 {
		t.Error("empty table distinct fraction should default to 1")
	}
	if empty.Stats().RowCount != 0 {
		t.Error("empty stats row count should be 0")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("StockQuotes", quotesSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("stockquotes", quotesSchema()); err == nil {
		t.Error("case-insensitive duplicate create should fail")
	}
	if _, err := s.Table("STOCKQUOTES"); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if _, err := s.Table("missing"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := s.Create("Estimations", quotesSchema()); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "Estimations" {
		t.Errorf("Names = %v", names)
	}
	if err := s.Drop("StockQuotes"); err != nil {
		t.Errorf("Drop: %v", err)
	}
	if err := s.Drop("StockQuotes"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	tbl, _ := s.Create("R", quotesSchema())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = tbl.Insert(sampleRow(fmt.Sprintf("w%d-%d", i, j), float64(j)))
				it := tbl.Iterator()
				for {
					if _, ok := it.Next(); !ok {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if tbl.RowCount() != 200 {
		t.Errorf("concurrent inserts lost rows: %d", tbl.RowCount())
	}
}

func TestHashIndex(t *testing.T) {
	tbl, _ := NewHeapTable("R", quotesSchema())
	for i := 0; i < 20; i++ {
		_ = tbl.Insert(sampleRow(fmt.Sprintf("N%d", i%4), float64(i)))
	}
	idx, err := BuildHashIndex(tbl, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 20 || idx.DistinctKeys() != 4 {
		t.Errorf("Len=%d DistinctKeys=%d", idx.Len(), idx.DistinctKeys())
	}
	probe := types.NewTuple(types.NewString("N1"))
	matches := idx.Probe(probe, []int{0})
	if len(matches) != 5 {
		t.Errorf("Probe(N1) = %d rows, want 5", len(matches))
	}
	if got := idx.ProbeKey(probe.Key([]int{0})); len(got) != 5 {
		t.Errorf("ProbeKey = %d rows", len(got))
	}
	none := idx.Probe(types.NewTuple(types.NewString("ZZ")), []int{0})
	if len(none) != 0 {
		t.Errorf("Probe(ZZ) = %d rows, want 0", len(none))
	}
	if _, err := BuildHashIndex(tbl, nil); err == nil {
		t.Error("empty key should fail")
	}
	if _, err := BuildHashIndex(tbl, []int{9}); err == nil {
		t.Error("out-of-range key should fail")
	}
	manual := NewHashIndex([]int{0})
	manual.Insert(types.NewTuple(types.NewString("k"), types.NewInt(1)))
	if manual.Len() != 1 {
		t.Error("manual index insert failed")
	}
}

func TestSortedIndex(t *testing.T) {
	tbl, _ := NewHeapTable("R", quotesSchema())
	vals := []float64{5, 1, 9, 3, 7, 3}
	for i, v := range vals {
		_ = tbl.Insert(sampleRow(fmt.Sprintf("N%d", i), v))
	}
	idx, err := BuildSortedIndex(tbl, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != len(vals) {
		t.Errorf("Len = %d", idx.Len())
	}
	it := idx.Scan()
	prev := -1.0
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		f, _ := row[1].Float()
		if f < prev {
			t.Errorf("scan out of order: %g after %g", f, prev)
		}
		prev = f
	}
	probe := types.NewTuple(types.NewFloat(3))
	matches := idx.Lookup(probe, []int{0})
	if len(matches) != 2 {
		t.Errorf("Lookup(3) = %d rows, want 2", len(matches))
	}
	if m := idx.Lookup(types.NewTuple(types.NewFloat(100)), []int{0}); len(m) != 0 {
		t.Errorf("Lookup(100) = %d rows", len(m))
	}
	pos, ok := idx.SeekGE(types.NewTuple(types.NewFloat(6)), []int{0})
	if !ok {
		t.Fatal("SeekGE(6) should find a row")
	}
	if f, _ := idx.Row(pos)[1].Float(); f != 7 {
		t.Errorf("SeekGE(6) landed on %g, want 7", f)
	}
	if _, ok := idx.SeekGE(types.NewTuple(types.NewFloat(100)), []int{0}); ok {
		t.Error("SeekGE past the end should report !ok")
	}
	if _, err := BuildSortedIndex(tbl, nil); err == nil {
		t.Error("empty key should fail")
	}
	if _, err := BuildSortedIndex(tbl, []int{-1}); err == nil {
		t.Error("negative key ordinal should fail")
	}
}

// TestQuickIndexAgreement property: for random tables, hash-index probes and
// sorted-index lookups return the same multiset of rows for every key.
func TestQuickIndexAgreement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl, _ := NewHeapTable("R", quotesSchema())
		n := 5 + r.Intn(60)
		for i := 0; i < n; i++ {
			_ = tbl.Insert(sampleRow(fmt.Sprintf("K%d", r.Intn(8)), float64(r.Intn(5))))
		}
		h, err := BuildHashIndex(tbl, []int{0})
		if err != nil {
			return false
		}
		s, err := BuildSortedIndex(tbl, []int{0})
		if err != nil {
			return false
		}
		for k := 0; k < 8; k++ {
			probe := types.NewTuple(types.NewString(fmt.Sprintf("K%d", k)))
			if len(h.Probe(probe, []int{0})) != len(s.Lookup(probe, []int{0})) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
