// Package storage implements the storage engines: in-memory heap tables with
// tuple iterators, hash and ordered indexes, and the statistics maintenance
// the optimizer's cost model relies on (row counts, average row sizes and
// distinct-value fractions). The disk-backed columnar engine lives in the
// colstore subpackage and plugs in behind the same Relation seam.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"csq/internal/catalog"
	"csq/internal/types"
)

// RowIterator is a snapshot iterator over a relation's rows. Implementations
// are single-goroutine; a fresh iterator is obtained per scan.
type RowIterator interface {
	// Next returns the next tuple, or (nil, false) when exhausted.
	Next() (types.Tuple, bool)
	// NextBatch fills up to len(dst) tuples into dst and returns how many
	// were filled; 0 means the snapshot is exhausted.
	NextBatch(dst []types.Tuple) int
	// Reset rewinds the iterator to the beginning of its snapshot.
	Reset()
	// Len returns the number of rows in the snapshot.
	Len() int
}

// Relation is the read surface the execution engine scans: any named,
// schema'd row source that can hand out snapshot iterators. *HeapTable is the
// in-memory implementation, colstore.Table the disk-backed columnar one;
// tests wrap either (e.g. to count scans).
type Relation interface {
	// Name returns the relation name.
	Name() string
	// Schema returns the relation's column layout. Callers must not modify it.
	Schema() *types.Schema
	// Iterator returns an iterator over a consistent snapshot of the rows.
	Iterator() RowIterator
}

// Versioned is implemented by relations that track a monotonically increasing
// data version; the planner's cross-query statistics cache keys on it so a
// mutation invalidates cached samples.
type Versioned interface {
	// Version returns the current data version. Any row mutation changes it.
	Version() uint64
}

// SegmentVersioned is implemented by relations that store their rows as a
// set of immutable segments (the columnar engine): the returned string
// identifies the exact segment set plus buffered tail a scan would observe.
// The planner's statistics cache extends its keys with it, since zone-map
// pruning makes sampled statistics depend on the segment set, not just the
// row data version.
type SegmentVersioned interface {
	// SegmentSetVersion identifies the current segment set; it changes
	// whenever segments are added or the buffered tail changes.
	SegmentSetVersion() string
}

// heapChunkRows is the capacity of one heap-table chunk. Chunks are sealed
// once full and never touched again, so a snapshot is a copy of two slice
// headers no matter how many rows the table holds.
const heapChunkRows = 1024

// HeapTable is an append-only in-memory relation. It is safe for concurrent
// readers and writers; iteration sees a consistent snapshot of the rows
// present when the iterator was created.
//
// Rows live in an immutable chunk list: all chunks but the last are sealed
// (full and never mutated), and the last chunk only ever has new rows
// appended within its fixed capacity. Taking a snapshot is therefore O(1) —
// a bounded copy of the chunk-list header plus the active chunk's length —
// instead of O(rows), however large the table grows.
type HeapTable struct {
	name   string
	schema *types.Schema

	version atomic.Uint64

	mu     sync.RWMutex
	sealed [][]types.Tuple // full, immutable chunks
	active []types.Tuple   // append-only tail chunk, cap == heapChunkRows
	rows   int             // total row count
	size   int64           // accumulated encoded size of all rows
}

// NewHeapTable creates an empty heap table with the given name and schema.
func NewHeapTable(name string, schema *types.Schema) (*HeapTable, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: table name must not be empty")
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", name)
	}
	return &HeapTable{name: name, schema: schema.Clone()}, nil
}

// Name returns the table name.
func (h *HeapTable) Name() string { return h.name }

// Schema returns the table schema. Callers must not modify it.
func (h *HeapTable) Schema() *types.Schema { return h.schema }

// Insert appends a tuple after validating its arity and column kinds.
func (h *HeapTable) Insert(t types.Tuple) error {
	if err := h.validate(t); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.active == nil {
		h.active = make([]types.Tuple, 0, heapChunkRows)
	}
	h.active = append(h.active, t.Clone())
	if len(h.active) == cap(h.active) {
		h.sealed = append(h.sealed, h.active)
		h.active = nil
	}
	h.rows++
	h.size += int64(t.Size())
	h.version.Add(1)
	return nil
}

// Version implements Versioned: it changes whenever the table's rows do, so
// cached statistics keyed on it go stale exactly when the data does.
func (h *HeapTable) Version() uint64 { return h.version.Load() }

// InsertBatch appends many tuples, validating each.
func (h *HeapTable) InsertBatch(ts []types.Tuple) error {
	for _, t := range ts {
		if err := h.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

func (h *HeapTable) validate(t types.Tuple) error {
	if t.Len() != h.schema.Len() {
		return fmt.Errorf("storage: table %q expects %d columns, got %d", h.name, h.schema.Len(), t.Len())
	}
	for i, v := range t {
		want := h.schema.Columns[i].Kind
		if v.IsNull() {
			continue
		}
		got := v.Kind()
		if got == want {
			continue
		}
		if got.Numeric() && want.Numeric() {
			continue
		}
		return fmt.Errorf("storage: table %q column %d (%s) expects %s, got %s",
			h.name, i, h.schema.Columns[i].Name, want, got)
	}
	return nil
}

// RowCount returns the number of stored rows.
func (h *HeapTable) RowCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// AvgRowSize returns the mean encoded row size in bytes (0 for empty tables).
func (h *HeapTable) AvgRowSize() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.rows == 0 {
		return 0
	}
	return int(h.size / int64(h.rows))
}

// snapshot returns the chunk list as of now. Sealed chunks are immutable and
// the active chunk's occupied prefix is immutable, so copying the chunk-list
// header and capping the active chunk at its current length yields a
// consistent snapshot without copying any rows.
func (h *HeapTable) snapshot() [][]types.Tuple {
	h.mu.RLock()
	defer h.mu.RUnlock()
	chunks := h.sealed[:len(h.sealed):len(h.sealed)]
	if len(h.active) > 0 {
		chunks = append(chunks, h.active[:len(h.active):len(h.active)])
	}
	return chunks
}

// Iterator returns an iterator over a snapshot of the table.
func (h *HeapTable) Iterator() RowIterator {
	return newChunkIterator(h.snapshot())
}

// Truncate removes all rows.
func (h *HeapTable) Truncate() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sealed, h.active = nil, nil
	h.rows = 0
	h.size = 0
	h.version.Add(1)
}

// Stats computes the statistics the catalog and the optimizer need: row count,
// average row size and the per-column distinct fraction (the paper's D when
// restricted to the UDF argument columns).
func (h *HeapTable) Stats() catalog.TableStats {
	chunks := h.snapshot()
	rows := 0
	for _, c := range chunks {
		rows += len(c)
	}
	stats := catalog.TableStats{
		RowCount:         rows,
		AvgRowSize:       h.AvgRowSize(),
		DistinctFraction: make(map[int]float64, h.schema.Len()),
	}
	if rows == 0 {
		return stats
	}
	for col := 0; col < h.schema.Len(); col++ {
		seen := make(map[string]struct{}, rows)
		for _, c := range chunks {
			for _, r := range c {
				seen[r.Key([]int{col})] = struct{}{}
			}
		}
		stats.DistinctFraction[col] = float64(len(seen)) / float64(rows)
	}
	return stats
}

// DistinctFractionOn computes the fraction of rows that are distinct when
// projected onto the given columns — the paper's D parameter for a UDF whose
// argument columns are ordinals.
func (h *HeapTable) DistinctFractionOn(ordinals []int) float64 {
	chunks := h.snapshot()
	rows := 0
	for _, c := range chunks {
		rows += len(c)
	}
	if rows == 0 {
		return 1
	}
	seen := make(map[string]struct{}, rows)
	for _, c := range chunks {
		for _, r := range c {
			seen[r.Key(ordinals)] = struct{}{}
		}
	}
	return float64(len(seen)) / float64(rows)
}

// TableIterator iterates over a snapshot of in-memory rows (a heap table's
// chunk list, or a single materialized slice such as a sorted index).
type TableIterator struct {
	chunks [][]types.Tuple
	ci     int // current chunk
	pos    int // position within the current chunk
	total  int
}

// newChunkIterator builds an iterator over a chunk list.
func newChunkIterator(chunks [][]types.Tuple) *TableIterator {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	return &TableIterator{chunks: chunks, total: total}
}

// NewSliceIterator returns an iterator over a single row slice; the caller
// must not mutate the occupied prefix afterwards.
func NewSliceIterator(rows []types.Tuple) *TableIterator {
	if len(rows) == 0 {
		return &TableIterator{}
	}
	return &TableIterator{chunks: [][]types.Tuple{rows}, total: len(rows)}
}

// Next returns the next tuple, or (nil, false) when exhausted.
func (it *TableIterator) Next() (types.Tuple, bool) {
	for it.ci < len(it.chunks) {
		if c := it.chunks[it.ci]; it.pos < len(c) {
			t := c[it.pos]
			it.pos++
			return t, true
		}
		it.ci++
		it.pos = 0
	}
	return nil, false
}

// NextBatch copies up to len(dst) tuples into dst and returns how many were
// copied; 0 means the snapshot is exhausted.
func (it *TableIterator) NextBatch(dst []types.Tuple) int {
	filled := 0
	for filled < len(dst) && it.ci < len(it.chunks) {
		c := it.chunks[it.ci]
		n := copy(dst[filled:], c[it.pos:])
		filled += n
		it.pos += n
		if it.pos >= len(c) {
			it.ci++
			it.pos = 0
		}
	}
	return filled
}

// Reset rewinds the iterator to the beginning of its snapshot.
func (it *TableIterator) Reset() { it.ci, it.pos = 0, 0 }

// Len returns the number of rows in the snapshot.
func (it *TableIterator) Len() int { return it.total }

// Store is a named collection of heap tables; the execution engine resolves
// base-table scans against it. It is kept separate from the catalog so that
// metadata (catalog) and data (store) can live in different components.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*HeapTable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*HeapTable)}
}

// Create creates a new heap table in the store.
func (s *Store) Create(name string, schema *types.Schema) (*HeapTable, error) {
	t, err := NewHeapTable(name, schema)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lowerKey(name)
	if _, ok := s.tables[k]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	s.tables[k] = t
	return t, nil
}

// Table looks up a table by case-insensitive name.
func (s *Store) Table(name string) (*HeapTable, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[lowerKey(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", name)
	}
	return t, nil
}

// Drop removes a table from the store.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lowerKey(name)
	if _, ok := s.tables[k]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(s.tables, k)
	return nil
}

// Names returns the table names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
