// Package storage implements the in-memory storage engine: heap tables with
// tuple iterators, hash and ordered indexes, and the statistics maintenance
// the optimizer's cost model relies on (row counts, average row sizes and
// distinct-value fractions).
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"csq/internal/catalog"
	"csq/internal/types"
)

// Relation is the read surface the execution engine scans: any named,
// schema'd row source that can hand out snapshot iterators. *HeapTable is the
// storage engine's implementation; tests wrap it (e.g. to count scans) and
// future storage backends implement it directly.
type Relation interface {
	// Name returns the relation name.
	Name() string
	// Schema returns the relation's column layout. Callers must not modify it.
	Schema() *types.Schema
	// Iterator returns an iterator over a consistent snapshot of the rows.
	Iterator() *TableIterator
}

// Versioned is implemented by relations that track a monotonically increasing
// data version; the planner's cross-query statistics cache keys on it so a
// mutation invalidates cached samples.
type Versioned interface {
	// Version returns the current data version. Any row mutation changes it.
	Version() uint64
}

// HeapTable is an append-only in-memory relation. It is safe for concurrent
// readers and writers; iteration sees a consistent snapshot of the rows
// present when the iterator was created.
type HeapTable struct {
	name   string
	schema *types.Schema

	version atomic.Uint64

	mu   sync.RWMutex
	rows []types.Tuple
	size int64 // accumulated encoded size of all rows
}

// NewHeapTable creates an empty heap table with the given name and schema.
func NewHeapTable(name string, schema *types.Schema) (*HeapTable, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: table name must not be empty")
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", name)
	}
	return &HeapTable{name: name, schema: schema.Clone()}, nil
}

// Name returns the table name.
func (h *HeapTable) Name() string { return h.name }

// Schema returns the table schema. Callers must not modify it.
func (h *HeapTable) Schema() *types.Schema { return h.schema }

// Insert appends a tuple after validating its arity and column kinds.
func (h *HeapTable) Insert(t types.Tuple) error {
	if err := h.validate(t); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rows = append(h.rows, t.Clone())
	h.size += int64(t.Size())
	h.version.Add(1)
	return nil
}

// Version implements Versioned: it changes whenever the table's rows do, so
// cached statistics keyed on it go stale exactly when the data does.
func (h *HeapTable) Version() uint64 { return h.version.Load() }

// InsertBatch appends many tuples, validating each.
func (h *HeapTable) InsertBatch(ts []types.Tuple) error {
	for _, t := range ts {
		if err := h.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

func (h *HeapTable) validate(t types.Tuple) error {
	if t.Len() != h.schema.Len() {
		return fmt.Errorf("storage: table %q expects %d columns, got %d", h.name, h.schema.Len(), t.Len())
	}
	for i, v := range t {
		want := h.schema.Columns[i].Kind
		if v.IsNull() {
			continue
		}
		got := v.Kind()
		if got == want {
			continue
		}
		if got.Numeric() && want.Numeric() {
			continue
		}
		return fmt.Errorf("storage: table %q column %d (%s) expects %s, got %s",
			h.name, i, h.schema.Columns[i].Name, want, got)
	}
	return nil
}

// RowCount returns the number of stored rows.
func (h *HeapTable) RowCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// AvgRowSize returns the mean encoded row size in bytes (0 for empty tables).
func (h *HeapTable) AvgRowSize() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.rows) == 0 {
		return 0
	}
	return int(h.size / int64(len(h.rows)))
}

// snapshot returns the current rows slice; the slice header is copied so
// appends by writers do not affect the snapshot, and rows themselves are
// immutable by convention.
func (h *HeapTable) snapshot() []types.Tuple {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows[:len(h.rows):len(h.rows)]
}

// Iterator returns an iterator over a snapshot of the table.
func (h *HeapTable) Iterator() *TableIterator {
	return &TableIterator{rows: h.snapshot()}
}

// Truncate removes all rows.
func (h *HeapTable) Truncate() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rows = nil
	h.size = 0
	h.version.Add(1)
}

// Stats computes the statistics the catalog and the optimizer need: row count,
// average row size and the per-column distinct fraction (the paper's D when
// restricted to the UDF argument columns).
func (h *HeapTable) Stats() catalog.TableStats {
	rows := h.snapshot()
	stats := catalog.TableStats{
		RowCount:         len(rows),
		AvgRowSize:       h.AvgRowSize(),
		DistinctFraction: make(map[int]float64, h.schema.Len()),
	}
	if len(rows) == 0 {
		return stats
	}
	for col := 0; col < h.schema.Len(); col++ {
		seen := make(map[string]struct{}, len(rows))
		for _, r := range rows {
			seen[r.Key([]int{col})] = struct{}{}
		}
		stats.DistinctFraction[col] = float64(len(seen)) / float64(len(rows))
	}
	return stats
}

// DistinctFractionOn computes the fraction of rows that are distinct when
// projected onto the given columns — the paper's D parameter for a UDF whose
// argument columns are ordinals.
func (h *HeapTable) DistinctFractionOn(ordinals []int) float64 {
	rows := h.snapshot()
	if len(rows) == 0 {
		return 1
	}
	seen := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		seen[r.Key(ordinals)] = struct{}{}
	}
	return float64(len(seen)) / float64(len(rows))
}

// TableIterator iterates over a snapshot of a heap table.
type TableIterator struct {
	rows []types.Tuple
	pos  int
}

// Next returns the next tuple, or (nil, false) when exhausted.
func (it *TableIterator) Next() (types.Tuple, bool) {
	if it.pos >= len(it.rows) {
		return nil, false
	}
	t := it.rows[it.pos]
	it.pos++
	return t, true
}

// NextBatch copies up to len(dst) tuples into dst and returns how many were
// copied; 0 means the snapshot is exhausted.
func (it *TableIterator) NextBatch(dst []types.Tuple) int {
	n := copy(dst, it.rows[it.pos:])
	it.pos += n
	return n
}

// Reset rewinds the iterator to the beginning of its snapshot.
func (it *TableIterator) Reset() { it.pos = 0 }

// Len returns the number of rows in the snapshot.
func (it *TableIterator) Len() int { return len(it.rows) }

// Store is a named collection of heap tables; the execution engine resolves
// base-table scans against it. It is kept separate from the catalog so that
// metadata (catalog) and data (store) can live in different components.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*HeapTable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*HeapTable)}
}

// Create creates a new heap table in the store.
func (s *Store) Create(name string, schema *types.Schema) (*HeapTable, error) {
	t, err := NewHeapTable(name, schema)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lowerKey(name)
	if _, ok := s.tables[k]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	s.tables[k] = t
	return t, nil
}

// Table looks up a table by case-insensitive name.
func (s *Store) Table(name string) (*HeapTable, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[lowerKey(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", name)
	}
	return t, nil
}

// Drop removes a table from the store.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := lowerKey(name)
	if _, ok := s.tables[k]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(s.tables, k)
	return nil
}

// Names returns the table names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
