package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of values and tuples.
//
// The encoding is self-describing and deterministic: every value is encoded
// as a 1-byte tag (kind | null flag) followed by a kind-specific payload.
// Variable-width payloads carry a uvarint length prefix. The same encoding is
// used by the storage layer, the wire protocol and Tuple.Key, so sizes
// reported by Value.Size stay in step with bytes on the wire.

const nullFlag = 0x80

// EncodeValue appends the encoding of v to dst and returns the extended slice.
func EncodeValue(dst []byte, v Value) ([]byte, error) {
	kind := v.Kind()
	tag := byte(kind)
	if v.IsNull() {
		dst = append(dst, tag|nullFlag)
		return dst, nil
	}
	dst = append(dst, tag)
	switch kind {
	case KindInt:
		i, _ := v.Int()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		dst = append(dst, buf[:]...)
	case KindFloat:
		f, _ := v.Float()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		dst = append(dst, buf[:]...)
	case KindBool:
		b, _ := v.Bool()
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindString:
		s, _ := v.Str()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	case KindBytes:
		b, _ := v.Bytes()
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		dst = append(dst, b...)
	case KindTimeSeries:
		ts, _ := v.Series()
		dst = binary.AppendUvarint(dst, uint64(len(ts)))
		for _, f := range ts {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			dst = append(dst, buf[:]...)
		}
	default:
		return nil, fmt.Errorf("types: cannot encode value of kind %s", kind)
	}
	return dst, nil
}

// DecodeValue decodes one value from src and returns it along with the number
// of bytes consumed.
func DecodeValue(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("types: decode value: empty input")
	}
	tag := src[0]
	kind := Kind(tag &^ nullFlag)
	if tag&nullFlag != 0 {
		return Null(kind), 1, nil
	}
	rest := src[1:]
	switch kind {
	case KindInt:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("types: decode INT: short input")
		}
		return NewInt(int64(binary.LittleEndian.Uint64(rest))), 9, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("types: decode FLOAT: short input")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rest))), 9, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("types: decode BOOL: short input")
		}
		return NewBool(rest[0] != 0), 2, nil
	case KindString:
		n, ln, err := decodeLen(rest)
		if err != nil {
			return Value{}, 0, fmt.Errorf("types: decode STRING: %w", err)
		}
		if len(rest) < ln+n {
			return Value{}, 0, fmt.Errorf("types: decode STRING: short input")
		}
		return NewString(string(rest[ln : ln+n])), 1 + ln + n, nil
	case KindBytes:
		n, ln, err := decodeLen(rest)
		if err != nil {
			return Value{}, 0, fmt.Errorf("types: decode BYTES: %w", err)
		}
		if len(rest) < ln+n {
			return Value{}, 0, fmt.Errorf("types: decode BYTES: short input")
		}
		b := make([]byte, n)
		copy(b, rest[ln:ln+n])
		return NewBytes(b), 1 + ln + n, nil
	case KindTimeSeries:
		n, ln, err := decodeLen(rest)
		if err != nil {
			return Value{}, 0, fmt.Errorf("types: decode TIMESERIES: %w", err)
		}
		if len(rest) < ln+8*n {
			return Value{}, 0, fmt.Errorf("types: decode TIMESERIES: short input")
		}
		ts := make(TimeSeries, n)
		for i := 0; i < n; i++ {
			ts[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[ln+8*i:]))
		}
		return NewTimeSeries(ts), 1 + ln + 8*n, nil
	default:
		return Value{}, 0, fmt.Errorf("types: decode: unknown kind tag %#x", tag)
	}
}

func decodeLen(src []byte) (n, consumed int, err error) {
	u, c := binary.Uvarint(src)
	if c <= 0 {
		return 0, 0, fmt.Errorf("bad length prefix")
	}
	if u > 1<<31 {
		return 0, 0, fmt.Errorf("length %d too large", u)
	}
	return int(u), c, nil
}

// EncodeTuple appends the encoding of t to dst: a uvarint column count
// followed by each value's encoding.
func EncodeTuple(dst []byte, t Tuple) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	var err error
	for _, v := range t {
		dst, err = EncodeValue(dst, v)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeTuple decodes one tuple from src and returns it along with the number
// of bytes consumed.
func DecodeTuple(src []byte) (Tuple, int, error) {
	n, c := binary.Uvarint(src)
	if c <= 0 {
		return nil, 0, fmt.Errorf("types: decode tuple: bad column count")
	}
	if n > 1<<20 {
		return nil, 0, fmt.Errorf("types: decode tuple: column count %d too large", n)
	}
	off := c
	t := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode tuple column %d: %w", i, err)
		}
		t = append(t, v)
		off += used
	}
	return t, off, nil
}

// DecodeTupleAppend decodes one tuple from src, appending its values to arena
// instead of allocating a per-tuple slice. It returns the grown arena, the
// number of values decoded, and the number of bytes consumed. Batch decoders
// use it to back every tuple of a frame with a single allocation; the caller
// slices the arena into tuples afterwards.
func DecodeTupleAppend(arena []Value, src []byte) ([]Value, int, int, error) {
	n, c := binary.Uvarint(src)
	if c <= 0 {
		return arena, 0, 0, fmt.Errorf("types: decode tuple: bad column count")
	}
	if n > 1<<20 {
		return arena, 0, 0, fmt.Errorf("types: decode tuple: column count %d too large", n)
	}
	off := c
	start := len(arena)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(src[off:])
		if err != nil {
			return arena[:start], 0, 0, fmt.Errorf("types: decode tuple column %d: %w", i, err)
		}
		arena = append(arena, v)
		off += used
	}
	return arena, int(n), off, nil
}

// EncodeSchema appends a compact encoding of the schema to dst.
func EncodeSchema(dst []byte, s *Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		dst = append(dst, byte(c.Kind))
		dst = binary.AppendUvarint(dst, uint64(len(c.Qualifier)))
		dst = append(dst, c.Qualifier...)
		dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
		dst = append(dst, c.Name...)
	}
	return dst
}

// DecodeSchema decodes a schema from src and returns it along with the number
// of bytes consumed.
func DecodeSchema(src []byte) (*Schema, int, error) {
	n, c := binary.Uvarint(src)
	if c <= 0 {
		return nil, 0, fmt.Errorf("types: decode schema: bad column count")
	}
	if n > 1<<16 {
		return nil, 0, fmt.Errorf("types: decode schema: column count %d too large", n)
	}
	off := c
	cols := make([]Column, 0, n)
	readStr := func() (string, error) {
		u, c := binary.Uvarint(src[off:])
		if c <= 0 {
			return "", fmt.Errorf("bad string length")
		}
		off += c
		if uint64(len(src)-off) < u {
			return "", fmt.Errorf("short input")
		}
		s := string(src[off : off+int(u)])
		off += int(u)
		return s, nil
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("types: decode schema: short input")
		}
		kind := Kind(src[off])
		off++
		q, err := readStr()
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode schema: %w", err)
		}
		name, err := readStr()
		if err != nil {
			return nil, 0, fmt.Errorf("types: decode schema: %w", err)
		}
		cols = append(cols, Column{Qualifier: q, Name: name, Kind: kind})
	}
	return &Schema{Columns: cols}, off, nil
}
