package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v Value) {
	t.Helper()
	enc, err := EncodeValue(nil, v)
	if err != nil {
		t.Fatalf("EncodeValue(%v): %v", v, err)
	}
	got, n, err := DecodeValue(enc)
	if err != nil {
		t.Fatalf("DecodeValue(%v): %v", v, err)
	}
	if n != len(enc) {
		t.Errorf("DecodeValue consumed %d of %d bytes", n, len(enc))
	}
	if v.IsNull() {
		if !got.IsNull() || got.Kind() != v.Kind() {
			t.Errorf("round trip of NULL %v produced %v", v.Kind(), got)
		}
		return
	}
	if c, err := Compare(v, got); err != nil || c != 0 {
		t.Errorf("round trip of %v produced %v (cmp=%d err=%v)", v, got, c, err)
	}
}

func TestValueEncodeRoundTrip(t *testing.T) {
	values := []Value{
		NewInt(0), NewInt(-1), NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewFloat(0), NewFloat(-2.75), NewFloat(math.MaxFloat64),
		NewBool(true), NewBool(false),
		NewString(""), NewString("hello world"), NewString("日本語"),
		NewBytes(nil), NewBytes([]byte{0, 1, 2, 255}),
		NewTimeSeries(nil), NewTimeSeries(NewSeries(1.5, -2, 0)),
		Null(KindInt), Null(KindString), Null(KindTimeSeries),
	}
	for _, v := range values {
		roundTripValue(t, v)
	}
}

func TestValueEncodeErrors(t *testing.T) {
	if _, err := EncodeValue(nil, Value{kind: KindInvalid, valid: true}); err == nil {
		t.Error("encoding an invalid kind should error")
	}
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("decoding empty input should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("short INT payload should error")
	}
	if _, _, err := DecodeValue([]byte{0x7f}); err == nil {
		t.Error("unknown kind tag should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 200}); err == nil {
		t.Error("truncated STRING should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindTimeSeries), 4, 0, 0}); err == nil {
		t.Error("truncated TIMESERIES should error")
	}
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	tup := NewTuple(
		NewInt(7),
		NewString("acme"),
		NewTimeSeries(NewSeries(10, 11, 12.5)),
		Null(KindFloat),
		NewBytes([]byte("payload")),
		NewBool(true),
	)
	enc, err := EncodeTuple(nil, tup)
	if err != nil {
		t.Fatalf("EncodeTuple: %v", err)
	}
	got, n, err := DecodeTuple(enc)
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if n != len(enc) {
		t.Errorf("DecodeTuple consumed %d of %d", n, len(enc))
	}
	if got.Len() != tup.Len() {
		t.Fatalf("arity %d != %d", got.Len(), tup.Len())
	}
	for i := range tup {
		if tup[i].IsNull() != got[i].IsNull() {
			t.Errorf("column %d null mismatch", i)
		}
		if !tup[i].IsNull() && !tup[i].Equal(got[i]) {
			t.Errorf("column %d: %v != %v", i, tup[i], got[i])
		}
	}
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("decoding empty tuple input should error")
	}
	if _, _, err := DecodeTuple([]byte{3, byte(KindInt)}); err == nil {
		t.Error("truncated tuple should error")
	}
}

func TestSchemaEncodeRoundTrip(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "S", Name: "Name", Kind: KindString},
		Column{Qualifier: "", Name: "Quotes", Kind: KindTimeSeries},
		Column{Qualifier: "E", Name: "Rating", Kind: KindInt},
	)
	enc := EncodeSchema(nil, s)
	got, n, err := DecodeSchema(enc)
	if err != nil {
		t.Fatalf("DecodeSchema: %v", err)
	}
	if n != len(enc) {
		t.Errorf("DecodeSchema consumed %d of %d", n, len(enc))
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("schema round trip: %v != %v", got, s)
	}
	if _, _, err := DecodeSchema(nil); err == nil {
		t.Error("decoding empty schema should error")
	}
	if _, _, err := DecodeSchema([]byte{2, byte(KindInt), 5}); err == nil {
		t.Error("truncated schema should error")
	}
}

// randomValue builds an arbitrary value from quick-check generated raw data.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(8) {
	case 0:
		return NewInt(r.Int63() - r.Int63())
	case 1:
		return NewFloat(r.NormFloat64() * 1e6)
	case 2:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return NewString(string(b))
	case 3:
		return NewBool(r.Intn(2) == 0)
	case 4:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return NewBytes(b)
	case 5:
		ts := make(TimeSeries, r.Intn(16))
		for i := range ts {
			ts[i] = r.NormFloat64() * 100
		}
		return NewTimeSeries(ts)
	case 6:
		return Null(Kind(1 + r.Intn(6)))
	default:
		return NewInt(int64(r.Intn(10)))
	}
}

// TestQuickValueRoundTrip property: encode/decode is the identity for any
// generated value, and the encoded size matches what Size() predicts to
// within the small fixed header slack.
func TestQuickValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			v := randomValue(r)
			enc, err := EncodeValue(nil, v)
			if err != nil {
				return false
			}
			got, n, err := DecodeValue(enc)
			if err != nil || n != len(enc) {
				return false
			}
			if v.IsNull() {
				if !got.IsNull() || got.Kind() != v.Kind() {
					return false
				}
				continue
			}
			if c, err := Compare(v, got); err != nil || c != 0 {
				return false
			}
			if got.Hash() != v.Hash() {
				return false
			}
			// Size() is allowed to over-estimate slightly (fixed header) but
			// never by more than 8 bytes, and never under-estimates by more
			// than the varint savings (8 bytes).
			diff := v.Size() - len(enc)
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickTupleRoundTrip property: tuple encode/decode preserves arity, key
// equality and hashes for arbitrary tuples.
func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			n := 1 + r.Intn(8)
			tup := make(Tuple, n)
			for j := range tup {
				tup[j] = randomValue(r)
			}
			enc, err := EncodeTuple(nil, tup)
			if err != nil {
				return false
			}
			got, used, err := DecodeTuple(enc)
			if err != nil || used != len(enc) || got.Len() != n {
				return false
			}
			all := make([]int, n)
			for j := range all {
				all[j] = j
			}
			if tup.Key(all) != got.Key(all) {
				return false
			}
			if tup.Hash(all) != got.Hash(all) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareTotalOrder property: Compare over same-kind values is a
// total order — antisymmetric and transitive on random triples.
func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := NewInt(a), NewInt(b), NewInt(c)
		ab, _ := Compare(va, vb)
		ba, _ := Compare(vb, va)
		if ab != -ba {
			return false
		}
		ac, _ := Compare(va, vc)
		bc, _ := Compare(vb, vc)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
