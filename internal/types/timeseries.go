package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// TimeSeries is an ordered sequence of float64 samples, modelling the
// S.Quotes column of the paper's StockQuotes relation. It is the typical
// argument type for the ClientAnalysis and Volatility client-site UDFs.
type TimeSeries []float64

// NewSeries copies the samples into a fresh TimeSeries.
func NewSeries(samples ...float64) TimeSeries {
	ts := make(TimeSeries, len(samples))
	copy(ts, samples)
	return ts
}

// Len returns the number of samples.
func (ts TimeSeries) Len() int { return len(ts) }

// At returns the i-th sample.
func (ts TimeSeries) At(i int) float64 { return ts[i] }

// First returns the first sample, or 0 for an empty series.
func (ts TimeSeries) First() float64 {
	if len(ts) == 0 {
		return 0
	}
	return ts[0]
}

// Last returns the last sample, or 0 for an empty series.
func (ts TimeSeries) Last() float64 {
	if len(ts) == 0 {
		return 0
	}
	return ts[len(ts)-1]
}

// Mean returns the arithmetic mean of the samples, or 0 for an empty series.
func (ts TimeSeries) Mean() float64 {
	if len(ts) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts {
		sum += v
	}
	return sum / float64(len(ts))
}

// Min returns the smallest sample, or +Inf for an empty series.
func (ts TimeSeries) Min() float64 {
	min := math.Inf(1)
	for _, v := range ts {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest sample, or -Inf for an empty series.
func (ts TimeSeries) Max() float64 {
	max := math.Inf(-1)
	for _, v := range ts {
		if v > max {
			max = v
		}
	}
	return max
}

// StdDev returns the population standard deviation of the samples.
func (ts TimeSeries) StdDev() float64 {
	if len(ts) < 2 {
		return 0
	}
	mean := ts.Mean()
	sum := 0.0
	for _, v := range ts {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ts)))
}

// Returns computes the period-over-period relative changes of the series.
// The result has Len()-1 samples (empty for series shorter than 2). Periods
// starting at zero yield a 0 return to keep the result finite.
func (ts TimeSeries) Returns() TimeSeries {
	if len(ts) < 2 {
		return TimeSeries{}
	}
	out := make(TimeSeries, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		prev := ts[i-1]
		if prev == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (ts[i]-prev)/prev)
	}
	return out
}

// Volatility returns the standard deviation of the period returns — the
// quantity the paper's Volatility(S.Quotes, S.FuturePrices) UDF estimates.
func (ts TimeSeries) Volatility() float64 {
	return ts.Returns().StdDev()
}

// Clone returns a deep copy of the series.
func (ts TimeSeries) Clone() TimeSeries {
	out := make(TimeSeries, len(ts))
	copy(out, ts)
	return out
}

// String renders a short, human-readable preview of the series.
func (ts TimeSeries) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for i, v := range ts {
		if i > 0 {
			sb.WriteString(" ")
		}
		if i >= 4 && len(ts) > 5 {
			fmt.Fprintf(&sb, "... +%d", len(ts)-i)
			break
		}
		fmt.Fprintf(&sb, "%.4g", v)
	}
	sb.WriteString("]")
	return sb.String()
}

// encode serialises the series to little-endian float64s; used for hashing and
// ordering only (the wire encoding lives in encode.go and is equivalent).
func (ts TimeSeries) encode() []byte {
	buf := make([]byte, 8*len(ts))
	for i, v := range ts {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// compare orders two series deterministically without allocating. The order
// is byte-lexicographic over the little-endian encoding — identical to
// comparing the encode() outputs, which is what hash tables relied on before
// this allocation-free path — so compare == 0 exactly when the bit patterns
// (and therefore the hashes) match.
func (ts TimeSeries) compare(other TimeSeries) int {
	n := len(ts)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		ab := math.Float64bits(ts[i])
		bb := math.Float64bits(other[i])
		if ab == bb {
			continue
		}
		// Little-endian byte order: the byte-reversed values compare the way
		// the encoded bytes would.
		if bits.ReverseBytes64(ab) < bits.ReverseBytes64(bb) {
			return -1
		}
		return 1
	}
	switch {
	case len(ts) < len(other):
		return -1
	case len(ts) > len(other):
		return 1
	default:
		return 0
	}
}
