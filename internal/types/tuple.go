package types

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of values, positionally matching a Schema.
// Tuples are treated as immutable once produced by an operator; operators
// that need to change a tuple build a new one.
type Tuple []Value

// NewTuple builds a tuple from the given values.
func NewTuple(vals ...Value) Tuple {
	t := make(Tuple, len(vals))
	copy(t, vals)
	return t
}

// Len returns the number of values in the tuple.
func (t Tuple) Len() int { return len(t) }

// Clone returns a shallow copy of the tuple. Values are immutable so a
// shallow copy is sufficient for independence.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Project returns a new tuple holding the values at the given ordinals in the
// given order.
func (t Tuple) Project(ordinals []int) (Tuple, error) {
	out := make(Tuple, 0, len(ordinals))
	for _, i := range ordinals {
		if i < 0 || i >= len(t) {
			return nil, fmt.Errorf("types: projection ordinal %d out of range [0,%d)", i, len(t))
		}
		out = append(out, t[i])
	}
	return out, nil
}

// Concat returns the tuple obtained by appending other's values to t.
func (t Tuple) Concat(other Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(other))
	out = append(out, t...)
	out = append(out, other...)
	return out
}

// ConcatInto appends a's then b's values to arena and returns the grown arena
// together with the concatenated tuple, which aliases the arena's tail. It
// lets batch operators carve many output tuples out of one allocation; the
// returned tuple is capped so later arena appends cannot overwrite it.
func ConcatInto(arena []Value, a, b Tuple) ([]Value, Tuple) {
	start := len(arena)
	arena = append(arena, a...)
	arena = append(arena, b...)
	return arena, Tuple(arena[start:len(arena):len(arena)])
}

// ProjectInto appends the values of t at the given ordinals to arena and
// returns the grown arena together with the projected tuple, which aliases
// the arena's tail. It is the arena-backed variant of Project.
func ProjectInto(arena []Value, t Tuple, ordinals []int) ([]Value, Tuple, error) {
	start := len(arena)
	for _, i := range ordinals {
		if i < 0 || i >= len(t) {
			return arena[:start], nil, fmt.Errorf("types: projection ordinal %d out of range [0,%d)", i, len(t))
		}
		arena = append(arena, t[i])
	}
	return arena, Tuple(arena[start:len(arena):len(arena)]), nil
}

// Append returns a new tuple with v added at the end (the "addColumn" step of
// the paper's naive UDF execution).
func (t Tuple) Append(v Value) Tuple {
	out := make(Tuple, 0, len(t)+1)
	out = append(out, t...)
	out = append(out, v)
	return out
}

// Size returns the approximate encoded size of the tuple in bytes. It is the
// sum of the value sizes plus a small per-tuple header, matching the binary
// encoding in encode.go.
func (t Tuple) Size() int {
	n := 4
	for _, v := range t {
		n += v.Size()
	}
	return n
}

// Hash combines the hashes of the values at the given ordinals. When ordinals
// is nil the whole tuple is hashed.
func (t Tuple) Hash(ordinals []int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	combine := func(v Value) {
		vh := v.Hash()
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(vh >> (8 * i)))
			h *= prime
		}
	}
	if ordinals == nil {
		for _, v := range t {
			combine(v)
		}
		return h
	}
	for _, i := range ordinals {
		if i >= 0 && i < len(t) {
			combine(t[i])
		}
	}
	return h
}

// CompareOn orders two tuples on the given key ordinals, comparing column by
// column. Tuples compare equal when all key columns compare equal.
func CompareOn(a, b Tuple, ordinals []int) (int, error) {
	for _, i := range ordinals {
		if i >= len(a) || i >= len(b) {
			return 0, fmt.Errorf("types: compare ordinal %d out of range", i)
		}
		c, err := Compare(a[i], b[i])
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// EqualOn reports whether two tuples agree on the given key ordinals.
// NULLs are considered equal to each other here (grouping semantics), which is
// what duplicate elimination needs.
func EqualOn(a, b Tuple, ordinals []int) bool {
	c, err := CompareOn(a, b, ordinals)
	return err == nil && c == 0
}

// Equal reports whether the two tuples are identical in every column
// (the paper's "tuple duplicates"); EqualOn over argument columns captures
// "argument duplicates".
func (t Tuple) Equal(other Tuple) bool {
	if len(t) != len(other) {
		return false
	}
	all := make([]int, len(t))
	for i := range all {
		all[i] = i
	}
	return EqualOn(t, other, all)
}

// Key renders the values at the given ordinals as a canonical string, usable
// as a map key for duplicate elimination and result caching. It relies on the
// deterministic binary encoding so distinct values produce distinct keys.
func (t Tuple) Key(ordinals []int) string {
	var sb strings.Builder
	for _, i := range ordinals {
		if i < 0 || i >= len(t) {
			continue
		}
		b, _ := EncodeValue(nil, t[i])
		sb.Write(b)
		sb.WriteByte(0xff)
	}
	return sb.String()
}

// String renders the tuple for display.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
