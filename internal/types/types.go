// Package types implements the value system used throughout the engine:
// scalar and composite data types, schemas, tuples, comparison, hashing and a
// compact binary encoding used both by the storage layer and the wire
// protocol.
//
// The design follows the PREDATOR model described in the paper: every column
// has a declared Kind, tuples are positional, and "enhanced" types such as
// time series are first-class values so that they can be passed as arguments
// to client-site UDFs.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the data types supported by the engine.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a valid schema.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 floating point number.
	KindFloat
	// KindString is a variable-length UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
	// KindBytes is an uninterpreted byte string (the paper's "DataObject").
	KindBytes
	// KindTimeSeries is an ordered sequence of float64 samples; it models the
	// S.Quotes column used by the ClientAnalysis UDF in the paper.
	KindTimeSeries
	// KindNull is the type of an untyped NULL literal before binding.
	KindNull
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindBytes:
		return "BYTES"
	case KindTimeSeries:
		return "TIMESERIES"
	case KindNull:
		return "NULL"
	default:
		return "INVALID"
	}
}

// KindFromName parses a type name as it appears in CREATE TABLE statements.
// It accepts a few aliases so that common SQL spellings work.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "STRING", "VARCHAR", "TEXT", "CHAR":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "BYTES", "BLOB", "DATAOBJECT":
		return KindBytes, nil
	case "TIMESERIES", "TIME_SERIES":
		return KindTimeSeries, nil
	default:
		return KindInvalid, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Numeric reports whether the kind is an arithmetic type.
func (k Kind) Numeric() bool {
	return k == KindInt || k == KindFloat
}

// Comparable reports whether values of this kind can be ordered with Compare.
func (k Kind) Comparable() bool {
	switch k {
	case KindInt, KindFloat, KindString, KindBool, KindBytes:
		return true
	default:
		return false
	}
}

// Column describes a single attribute of a relation: its name, type, and an
// optional qualifier (the table or alias the column came from).
type Column struct {
	Qualifier string
	Name      string
	Kind      Kind
}

// QualifiedName returns "qualifier.name" or just the name when the column has
// no qualifier.
func (c Column) QualifiedName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// String implements fmt.Stringer.
func (c Column) String() string {
	return fmt.Sprintf("%s %s", c.QualifiedName(), c.Kind)
}

// Schema is an ordered list of columns describing the shape of a tuple.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Project returns a new schema containing only the columns at the given
// ordinals, in the given order.
func (s *Schema) Project(ordinals []int) (*Schema, error) {
	cols := make([]Column, 0, len(ordinals))
	for _, i := range ordinals {
		if i < 0 || i >= len(s.Columns) {
			return nil, fmt.Errorf("types: projection ordinal %d out of range [0,%d)", i, len(s.Columns))
		}
		cols = append(cols, s.Columns[i])
	}
	return &Schema{Columns: cols}, nil
}

// Concat returns the schema obtained by appending other's columns to s.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, other.Columns...)
	return &Schema{Columns: cols}
}

// Ordinal resolves a possibly-qualified column reference to its position.
// Matching is case-insensitive. It returns an error when the reference is
// ambiguous or not found.
func (s *Schema) Ordinal(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("types: ambiguous column reference %q", joinRef(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("types: column %q not found in schema %s", joinRef(qualifier, name), s)
	}
	return found, nil
}

func joinRef(qualifier, name string) string {
	if qualifier == "" {
		return name
	}
	return qualifier + "." + name
}

// Equal reports whether the two schemas have the same column kinds in the same
// order. Column names are ignored: result compatibility in the executor is
// positional.
func (s *Schema) Equal(other *Schema) bool {
	if s.Len() != other.Len() {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i].Kind != other.Columns[i].Kind {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Kinds returns the column kinds in order.
func (s *Schema) Kinds() []Kind {
	ks := make([]Kind, len(s.Columns))
	for i, c := range s.Columns {
		ks[i] = c.Kind
	}
	return ks
}

// WithQualifier returns a copy of the schema in which every column's qualifier
// has been replaced by q. It is used when a table is aliased in a query.
func (s *Schema) WithQualifier(q string) *Schema {
	out := s.Clone()
	for i := range out.Columns {
		out.Columns[i].Qualifier = q
	}
	return out
}
