package types

import (
	"math"
	"strings"
	"testing"
)

func TestKindFromName(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"INT", KindInt, true},
		{"integer", KindInt, true},
		{"BIGINT", KindInt, true},
		{"float", KindFloat, true},
		{"DOUBLE", KindFloat, true},
		{"varchar", KindString, true},
		{"TEXT", KindString, true},
		{"bool", KindBool, true},
		{"BLOB", KindBytes, true},
		{"DataObject", KindBytes, true},
		{"timeseries", KindTimeSeries, true},
		{"  int  ", KindInt, true},
		{"widget", KindInvalid, false},
		{"", KindInvalid, false},
	}
	for _, c := range cases {
		got, err := KindFromName(c.in)
		if c.ok && err != nil {
			t.Errorf("KindFromName(%q): unexpected error %v", c.in, err)
			continue
		}
		if !c.ok && err == nil {
			t.Errorf("KindFromName(%q): expected error", c.in)
			continue
		}
		if got != c.want {
			t.Errorf("KindFromName(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInt:        "INT",
		KindFloat:      "FLOAT",
		KindString:     "STRING",
		KindBool:       "BOOL",
		KindBytes:      "BYTES",
		KindTimeSeries: "TIMESERIES",
		KindNull:       "NULL",
		KindInvalid:    "INVALID",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("INT and FLOAT should be numeric")
	}
	if KindString.Numeric() || KindBytes.Numeric() {
		t.Error("STRING and BYTES should not be numeric")
	}
	if !KindString.Comparable() || !KindBytes.Comparable() {
		t.Error("STRING and BYTES should be comparable")
	}
	if KindNull.Comparable() {
		t.Error("NULL kind should not be comparable")
	}
}

func TestSchemaOrdinal(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "S", Name: "Name", Kind: KindString},
		Column{Qualifier: "S", Name: "Quotes", Kind: KindTimeSeries},
		Column{Qualifier: "E", Name: "Name", Kind: KindString},
	)
	if i, err := s.Ordinal("S", "Quotes"); err != nil || i != 1 {
		t.Errorf("Ordinal(S.Quotes) = %d, %v; want 1, nil", i, err)
	}
	if i, err := s.Ordinal("s", "quotes"); err != nil || i != 1 {
		t.Errorf("case-insensitive Ordinal = %d, %v; want 1, nil", i, err)
	}
	if _, err := s.Ordinal("", "Name"); err == nil {
		t.Error("unqualified ambiguous reference should error")
	}
	if i, err := s.Ordinal("E", "Name"); err != nil || i != 2 {
		t.Errorf("Ordinal(E.Name) = %d, %v; want 2, nil", i, err)
	}
	if _, err := s.Ordinal("", "Missing"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := s.Ordinal("X", "Name"); err == nil {
		t.Error("wrong qualifier should error")
	}
}

func TestSchemaProjectConcatClone(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindString},
		Column{Name: "c", Kind: KindFloat},
	)
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Errorf("Project produced %v", p)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection should error")
	}
	other := NewSchema(Column{Name: "d", Kind: KindBool})
	cat := s.Concat(other)
	if cat.Len() != 4 || cat.Columns[3].Name != "d" {
		t.Errorf("Concat produced %v", cat)
	}
	clone := s.Clone()
	clone.Columns[0].Name = "zzz"
	if s.Columns[0].Name != "a" {
		t.Error("Clone should not alias the original")
	}
	q := s.WithQualifier("R")
	if q.Columns[0].Qualifier != "R" || s.Columns[0].Qualifier != "" {
		t.Error("WithQualifier should qualify a copy only")
	}
	if !s.Equal(s.Clone()) {
		t.Error("schema should equal its clone")
	}
	if s.Equal(other) {
		t.Error("different schemas should not be equal")
	}
	if !strings.Contains(s.String(), "b STRING") {
		t.Errorf("String() = %q", s.String())
	}
	ks := s.Kinds()
	if len(ks) != 3 || ks[1] != KindString {
		t.Errorf("Kinds() = %v", ks)
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	iv := NewInt(42)
	if v, err := iv.Int(); err != nil || v != 42 {
		t.Errorf("Int() = %d, %v", v, err)
	}
	if f, err := iv.Float(); err != nil || f != 42 {
		t.Errorf("Float() of INT = %g, %v", f, err)
	}
	fv := NewFloat(2.5)
	if f, err := fv.Float(); err != nil || f != 2.5 {
		t.Errorf("Float() = %g, %v", f, err)
	}
	sv := NewString("hello")
	if s, err := sv.Str(); err != nil || s != "hello" {
		t.Errorf("Str() = %q, %v", s, err)
	}
	bv := NewBool(true)
	if b, err := bv.Bool(); err != nil || !b {
		t.Errorf("Bool() = %v, %v", b, err)
	}
	byv := NewBytes([]byte{1, 2, 3})
	if b, err := byv.Bytes(); err != nil || len(b) != 3 {
		t.Errorf("Bytes() = %v, %v", b, err)
	}
	tv := NewTimeSeries(NewSeries(1, 2, 3))
	if ts, err := tv.Series(); err != nil || ts.Len() != 3 {
		t.Errorf("Series() = %v, %v", ts, err)
	}

	// Wrong-kind accessors must fail.
	if _, err := sv.Int(); err == nil {
		t.Error("Int() on STRING should error")
	}
	if _, err := iv.Str(); err == nil {
		t.Error("Str() on INT should error")
	}
	if _, err := iv.Bool(); err == nil {
		t.Error("Bool() on INT should error")
	}
	if _, err := iv.Bytes(); err == nil {
		t.Error("Bytes() on INT should error")
	}
	if _, err := iv.Series(); err == nil {
		t.Error("Series() on INT should error")
	}
}

func TestNullValues(t *testing.T) {
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
	if zero.Kind() != KindNull {
		t.Errorf("zero Value kind = %v", zero.Kind())
	}
	n := Null(KindInt)
	if !n.IsNull() || n.Kind() != KindInt {
		t.Errorf("Null(INT) = %v", n)
	}
	if _, err := n.Int(); err != ErrNull {
		t.Errorf("Int() on NULL = %v, want ErrNull", err)
	}
	if n.Equal(Null(KindInt)) {
		t.Error("NULL should not Equal NULL")
	}
	if c, err := Compare(Null(KindInt), Null(KindString)); err != nil || c != 0 {
		t.Errorf("Compare(NULL, NULL) = %d, %v", c, err)
	}
	if c, _ := Compare(Null(KindInt), NewInt(0)); c != -1 {
		t.Errorf("NULL should sort before non-NULL, got %d", c)
	}
	if c, _ := Compare(NewInt(0), Null(KindInt)); c != 1 {
		t.Errorf("non-NULL should sort after NULL, got %d", c)
	}
	if n.String() != "NULL" {
		t.Errorf("NULL String() = %q", n.String())
	}
	if tr, err := n.Truth(); err != nil || tr {
		t.Errorf("NULL Truth() = %v, %v", tr, err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBytes([]byte{1, 2}), NewBytes([]byte{1, 2, 3}), -1},
		{NewBytes([]byte{2}), NewBytes([]byte{1, 9}), 1},
		{NewTimeSeries(NewSeries(1, 2)), NewTimeSeries(NewSeries(1, 2)), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("comparing STRING with INT should error")
	}
	// NaN ordering is total.
	if c, _ := Compare(NewFloat(math.NaN()), NewFloat(1)); c != -1 {
		t.Errorf("NaN should sort before numbers, got %d", c)
	}
	if c, _ := Compare(NewFloat(1), NewFloat(math.NaN())); c != 1 {
		t.Errorf("numbers should sort after NaN, got %d", c)
	}
}

func TestValueHashConsistency(t *testing.T) {
	if NewInt(2).Hash() != NewFloat(2).Hash() {
		t.Error("INT 2 and FLOAT 2.0 must hash identically (they compare equal)")
	}
	if NewString("x").Hash() == NewString("y").Hash() {
		t.Error("different strings should normally hash differently")
	}
	a := NewTimeSeries(NewSeries(1, 2, 3))
	b := NewTimeSeries(NewSeries(1, 2, 3))
	if a.Hash() != b.Hash() {
		t.Error("equal time series must hash identically")
	}
}

func TestValueTruth(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		ok   bool
	}{
		{NewBool(true), true, true},
		{NewBool(false), false, true},
		{NewInt(0), false, true},
		{NewInt(5), true, true},
		{NewFloat(0.0), false, true},
		{NewFloat(-1), true, true},
		{NewString("x"), false, false},
	}
	for _, c := range cases {
		got, err := c.v.Truth()
		if c.ok && err != nil {
			t.Errorf("Truth(%v): %v", c.v, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Truth(%v): expected error", c.v)
		}
		if err == nil && got != c.want {
			t.Errorf("Truth(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueCast(t *testing.T) {
	if v, err := NewFloat(3.7).Cast(KindInt); err != nil {
		t.Errorf("cast FLOAT->INT: %v", err)
	} else if i, _ := v.Int(); i != 3 {
		t.Errorf("cast FLOAT->INT = %d", i)
	}
	if v, err := NewString("12").Cast(KindInt); err != nil {
		t.Errorf("cast STRING->INT: %v", err)
	} else if i, _ := v.Int(); i != 12 {
		t.Errorf("cast STRING->INT = %d", i)
	}
	if v, err := NewString("2.5").Cast(KindFloat); err != nil {
		t.Errorf("cast STRING->FLOAT: %v", err)
	} else if f, _ := v.Float(); f != 2.5 {
		t.Errorf("cast STRING->FLOAT = %g", f)
	}
	if v, err := NewInt(1).Cast(KindBool); err != nil {
		t.Errorf("cast INT->BOOL: %v", err)
	} else if b, _ := v.Bool(); !b {
		t.Errorf("cast INT(1)->BOOL = %v", b)
	}
	if v, err := NewInt(7).Cast(KindString); err != nil {
		t.Errorf("cast INT->STRING: %v", err)
	} else if s, _ := v.Str(); s != "7" {
		t.Errorf("cast INT->STRING = %q", s)
	}
	if v, err := NewString("abc").Cast(KindBytes); err != nil {
		t.Errorf("cast STRING->BYTES: %v", err)
	} else if b, _ := v.Bytes(); string(b) != "abc" {
		t.Errorf("cast STRING->BYTES = %q", b)
	}
	if _, err := NewString("oops").Cast(KindInt); err == nil {
		t.Error("cast of non-numeric string to INT should error")
	}
	if _, err := NewBytes([]byte{1}).Cast(KindTimeSeries); err == nil {
		t.Error("unsupported cast should error")
	}
	if v, err := Null(KindString).Cast(KindInt); err != nil || !v.IsNull() || v.Kind() != KindInt {
		t.Errorf("cast of NULL = %v, %v", v, err)
	}
	// Identity cast.
	if v, err := NewInt(5).Cast(KindInt); err != nil || !v.Equal(NewInt(5)) {
		t.Errorf("identity cast = %v, %v", v, err)
	}
}

func TestValueSizeAndString(t *testing.T) {
	if NewInt(1).Size() != 10 {
		t.Errorf("INT size = %d", NewInt(1).Size())
	}
	if NewString("abcd").Size() != 10 {
		t.Errorf("STRING size = %d", NewString("abcd").Size())
	}
	if NewTimeSeries(NewSeries(1, 2)).Size() != 22 {
		t.Errorf("TIMESERIES size = %d", NewTimeSeries(NewSeries(1, 2)).Size())
	}
	if Null(KindInt).Size() != 2 {
		t.Errorf("NULL size = %d", Null(KindInt).Size())
	}
	if NewBool(true).String() != "true" || NewBool(false).String() != "false" {
		t.Error("BOOL String() wrong")
	}
	if !strings.Contains(NewBytes(make([]byte, 9)).String(), "9") {
		t.Error("BYTES String() should include length")
	}
}

func TestTimeSeriesStats(t *testing.T) {
	ts := NewSeries(100, 110, 121)
	if ts.Len() != 3 || ts.At(1) != 110 {
		t.Errorf("Len/At wrong: %v", ts)
	}
	if ts.First() != 100 || ts.Last() != 121 {
		t.Errorf("First/Last wrong: %v", ts)
	}
	if m := ts.Mean(); math.Abs(m-110.333) > 0.01 {
		t.Errorf("Mean = %g", m)
	}
	if ts.Min() != 100 || ts.Max() != 121 {
		t.Errorf("Min/Max wrong")
	}
	r := ts.Returns()
	if r.Len() != 2 || math.Abs(r[0]-0.1) > 1e-9 || math.Abs(r[1]-0.1) > 1e-9 {
		t.Errorf("Returns = %v", r)
	}
	if v := ts.Volatility(); math.Abs(v) > 1e-9 {
		t.Errorf("constant-return series should have ~0 volatility, got %g", v)
	}
	var empty TimeSeries
	if empty.Mean() != 0 || empty.First() != 0 || empty.Last() != 0 {
		t.Error("empty series stats should be zero")
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Error("empty Min/Max should be infinities")
	}
	if empty.Returns().Len() != 0 {
		t.Error("empty Returns should be empty")
	}
	if empty.StdDev() != 0 {
		t.Error("StdDev of short series should be 0")
	}
	zeroStart := NewSeries(0, 5)
	if zeroStart.Returns()[0] != 0 {
		t.Error("return after a zero sample should be 0")
	}
	clone := ts.Clone()
	clone[0] = -1
	if ts[0] != 100 {
		t.Error("Clone should copy")
	}
	long := NewSeries(1, 2, 3, 4, 5, 6, 7)
	if !strings.Contains(long.String(), "...") {
		t.Errorf("long series String should be abbreviated: %q", long.String())
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(NewInt(1), NewString("a"), NewFloat(2.5))
	if tp.Len() != 3 {
		t.Fatalf("Len = %d", tp.Len())
	}
	clone := tp.Clone()
	clone[0] = NewInt(99)
	if v, _ := tp[0].Int(); v != 1 {
		t.Error("Clone should not alias")
	}
	p, err := tp.Project([]int{2, 0})
	if err != nil || p.Len() != 2 {
		t.Fatalf("Project: %v, %v", p, err)
	}
	if f, _ := p[0].Float(); f != 2.5 {
		t.Errorf("projected value = %v", p[0])
	}
	if _, err := tp.Project([]int{9}); err == nil {
		t.Error("out-of-range Project should error")
	}
	cat := tp.Concat(NewTuple(NewBool(true)))
	if cat.Len() != 4 {
		t.Errorf("Concat len = %d", cat.Len())
	}
	app := tp.Append(NewInt(7))
	if app.Len() != 4 {
		t.Errorf("Append len = %d", app.Len())
	}
	if tp.Len() != 3 {
		t.Error("Append must not modify the receiver")
	}
	if tp.Size() <= 0 {
		t.Error("Size should be positive")
	}
	if !strings.Contains(tp.String(), "2.5") {
		t.Errorf("String() = %q", tp.String())
	}
}

func TestTupleCompareAndKeys(t *testing.T) {
	a := NewTuple(NewInt(1), NewString("x"), NewFloat(9))
	b := NewTuple(NewInt(1), NewString("x"), NewFloat(10))
	c := NewTuple(NewInt(2), NewString("x"), NewFloat(9))

	if !EqualOn(a, b, []int{0, 1}) {
		t.Error("a and b agree on columns 0,1")
	}
	if EqualOn(a, c, []int{0}) {
		t.Error("a and c differ on column 0")
	}
	if cmp, err := CompareOn(a, c, []int{0}); err != nil || cmp != -1 {
		t.Errorf("CompareOn = %d, %v", cmp, err)
	}
	if cmp, err := CompareOn(a, b, []int{2}); err != nil || cmp != -1 {
		t.Errorf("CompareOn col2 = %d, %v", cmp, err)
	}
	if _, err := CompareOn(a, b, []int{7}); err == nil {
		t.Error("out-of-range CompareOn should error")
	}
	if !a.Equal(a.Clone()) {
		t.Error("tuple should equal its clone")
	}
	if a.Equal(b) {
		t.Error("a and b differ in column 2")
	}
	if a.Equal(NewTuple(NewInt(1))) {
		t.Error("different arity tuples are not equal")
	}
	if a.Key([]int{0, 1}) != b.Key([]int{0, 1}) {
		t.Error("keys over equal columns must match")
	}
	if a.Key([]int{0, 1, 2}) == b.Key([]int{0, 1, 2}) {
		t.Error("keys over differing columns must differ")
	}
	if a.Hash([]int{0, 1}) != b.Hash([]int{0, 1}) {
		t.Error("hashes over equal columns must match")
	}
	if a.Hash(nil) == 0 {
		t.Error("full-tuple hash should be non-trivial")
	}
	// NULLs group together for duplicate elimination.
	n1 := NewTuple(Null(KindInt))
	n2 := NewTuple(Null(KindInt))
	if !EqualOn(n1, n2, []int{0}) {
		t.Error("NULL keys should group together")
	}
}
