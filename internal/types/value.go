package types

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrNull is returned by accessors when the value is NULL.
var ErrNull = errors.New("types: value is NULL")

// ErrKindMismatch is returned when a value is accessed as the wrong kind.
var ErrKindMismatch = errors.New("types: kind mismatch")

// Value is a single, immutable SQL value. The zero Value is NULL.
//
// Value is a small struct passed by value; variable-width payloads (strings,
// bytes, time series) are held by reference, so copying a Value is cheap.
type Value struct {
	kind  Kind
	null  bool
	i     int64
	f     float64
	s     string
	b     []byte
	ts    TimeSeries
	valid bool // distinguishes the zero Value (NULL of KindNull) from constructed values
}

// Null returns a NULL value of the given kind.
func Null(kind Kind) Value {
	return Value{kind: kind, null: true, valid: true}
}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v, valid: true} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v, valid: true} }

// NewString returns a STRING value.
func NewString(v string) Value { return Value{kind: KindString, s: v, valid: true} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i, valid: true}
}

// NewBytes returns a BYTES value. The slice is not copied; callers must not
// mutate it afterwards.
func NewBytes(v []byte) Value { return Value{kind: KindBytes, b: v, valid: true} }

// NewTimeSeries returns a TIMESERIES value. The series is not copied.
func NewTimeSeries(ts TimeSeries) Value { return Value{kind: KindTimeSeries, ts: ts, valid: true} }

// Kind returns the value's declared kind. The zero Value reports KindNull.
func (v Value) Kind() Kind {
	if !v.valid {
		return KindNull
	}
	return v.kind
}

// IsNull reports whether the value is NULL. The zero Value is NULL.
func (v Value) IsNull() bool { return !v.valid || v.null }

// Int returns the int64 payload of an INT or BOOL value.
func (v Value) Int() (int64, error) {
	if v.IsNull() {
		return 0, ErrNull
	}
	if v.kind != KindInt && v.kind != KindBool {
		return 0, fmt.Errorf("%w: have %s, want INT", ErrKindMismatch, v.kind)
	}
	return v.i, nil
}

// Float returns the float64 payload. INT values are widened.
func (v Value) Float() (float64, error) {
	if v.IsNull() {
		return 0, ErrNull
	}
	switch v.kind {
	case KindFloat:
		return v.f, nil
	case KindInt:
		return float64(v.i), nil
	default:
		return 0, fmt.Errorf("%w: have %s, want FLOAT", ErrKindMismatch, v.kind)
	}
}

// Str returns the string payload of a STRING value.
func (v Value) Str() (string, error) {
	if v.IsNull() {
		return "", ErrNull
	}
	if v.kind != KindString {
		return "", fmt.Errorf("%w: have %s, want STRING", ErrKindMismatch, v.kind)
	}
	return v.s, nil
}

// Bool returns the boolean payload of a BOOL value.
func (v Value) Bool() (bool, error) {
	if v.IsNull() {
		return false, ErrNull
	}
	if v.kind != KindBool {
		return false, fmt.Errorf("%w: have %s, want BOOL", ErrKindMismatch, v.kind)
	}
	return v.i != 0, nil
}

// Bytes returns the byte payload of a BYTES value. Callers must not mutate the
// returned slice.
func (v Value) Bytes() ([]byte, error) {
	if v.IsNull() {
		return nil, ErrNull
	}
	if v.kind != KindBytes {
		return nil, fmt.Errorf("%w: have %s, want BYTES", ErrKindMismatch, v.kind)
	}
	return v.b, nil
}

// Series returns the time-series payload of a TIMESERIES value.
func (v Value) Series() (TimeSeries, error) {
	if v.IsNull() {
		return nil, ErrNull
	}
	if v.kind != KindTimeSeries {
		return nil, fmt.Errorf("%w: have %s, want TIMESERIES", ErrKindMismatch, v.kind)
	}
	return v.ts, nil
}

// Size returns the approximate encoded size of the value in bytes. The cost
// model and the wire protocol both use this figure, so it must agree with the
// encoding in encode.go.
func (v Value) Size() int {
	if v.IsNull() {
		return 2
	}
	switch v.kind {
	case KindInt, KindFloat:
		return 10
	case KindBool:
		return 3
	case KindString:
		return 6 + len(v.s)
	case KindBytes:
		return 6 + len(v.b)
	case KindTimeSeries:
		return 6 + 8*len(v.ts)
	default:
		return 2
	}
}

// String renders the value for display and for the shell.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return v.s
	case KindBytes:
		return fmt.Sprintf("<bytes %d>", len(v.b))
	case KindTimeSeries:
		return v.ts.String()
	default:
		return "<invalid>"
	}
}

// Equal reports whether two values are equal. NULL equals nothing, including
// another NULL (SQL semantics); use Compare for sorting NULLs.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return false
	}
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// Compare orders two values. NULL sorts before every non-NULL value and equal
// to another NULL (total order for sorting, unlike Equal). Values of different
// numeric kinds are compared numerically; other kind mismatches are an error.
func Compare(a, b Value) (int, error) {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0, nil
	case an:
		return -1, nil
	case bn:
		return 1, nil
	}
	ak, bk := a.kind, b.kind
	if ak.Numeric() && bk.Numeric() {
		af, _ := a.Float()
		bf, _ := b.Float()
		return compareFloat(af, bf), nil
	}
	if ak != bk {
		return 0, fmt.Errorf("%w: cannot compare %s with %s", ErrKindMismatch, ak, bk)
	}
	switch ak {
	case KindInt, KindBool:
		return compareInt(a.i, b.i), nil
	case KindFloat:
		return compareFloat(a.f, b.f), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBytes:
		return compareBytes(a.b, b.b), nil
	case KindTimeSeries:
		return a.ts.compare(b.ts), nil
	default:
		return 0, fmt.Errorf("types: cannot compare values of kind %s", ak)
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return compareInt(int64(len(a)), int64(len(b)))
}

// Hash returns a 64-bit FNV-1a style hash of the value, suitable for hash
// joins and duplicate elimination. Equal values (per Compare == 0) hash
// identically; numeric values hash by their float64 representation so that
// INT 2 and FLOAT 2.0 collide as required by Compare.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix8 := func(x uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(x >> (8 * i)))
		}
	}
	if v.IsNull() {
		mix(0)
		return h
	}
	switch v.kind {
	case KindInt:
		mix(1)
		mix8(math.Float64bits(float64(v.i)))
	case KindFloat:
		mix(1)
		mix8(math.Float64bits(v.f))
	case KindBool:
		mix(2)
		mix(byte(v.i))
	case KindString:
		mix(3)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBytes:
		mix(4)
		for _, b := range v.b {
			mix(b)
		}
	case KindTimeSeries:
		mix(5)
		for _, f := range v.ts {
			mix8(math.Float64bits(f))
		}
	}
	return h
}

// Truth evaluates the value in a boolean context: BOOL values are themselves,
// NULL is false, and non-zero numerics are true. Other kinds are an error.
func (v Value) Truth() (bool, error) {
	if v.IsNull() {
		return false, nil
	}
	switch v.kind {
	case KindBool:
		return v.i != 0, nil
	case KindInt:
		return v.i != 0, nil
	case KindFloat:
		return v.f != 0, nil
	default:
		return false, fmt.Errorf("%w: %s used in boolean context", ErrKindMismatch, v.kind)
	}
}

// Cast converts the value to the target kind where a lossless or conventional
// conversion exists (int<->float, anything->string, string->numeric).
func (v Value) Cast(target Kind) (Value, error) {
	if v.IsNull() {
		return Null(target), nil
	}
	if v.kind == target {
		return v, nil
	}
	switch target {
	case KindInt:
		switch v.kind {
		case KindFloat:
			return NewInt(int64(v.f)), nil
		case KindBool:
			return NewInt(v.i), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("types: cannot cast %q to INT: %w", v.s, err)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return NewFloat(float64(v.i)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("types: cannot cast %q to FLOAT: %w", v.s, err)
			}
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.String()), nil
	case KindBool:
		switch v.kind {
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindString:
			b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(v.s)))
			if err != nil {
				return Value{}, fmt.Errorf("types: cannot cast %q to BOOL: %w", v.s, err)
			}
			return NewBool(b), nil
		}
	case KindBytes:
		if v.kind == KindString {
			return NewBytes([]byte(v.s)), nil
		}
	}
	return Value{}, fmt.Errorf("types: unsupported cast from %s to %s", v.kind, target)
}
