package wire

import (
	"fmt"
	"testing"

	"csq/internal/types"
)

// The codec benchmarks compare the allocating encode/decode entry points with
// the pooled/arena-based ones the operators use. cmd/benchrun runs them and
// folds the numbers into BENCH_exec.json.

func benchBatch(n int) *TupleBatch {
	b := &TupleBatch{SessionID: 7, Seq: 3}
	for i := 0; i < n; i++ {
		b.Tuples = append(b.Tuples, types.NewTuple(
			types.NewString(fmt.Sprintf("C%03d", i)),
			types.NewFloat(float64(i)),
			types.NewInt(int64(i)),
			types.NewTimeSeries(types.NewSeries(100, 100+float64(i))),
		))
	}
	return b
}

func BenchmarkEncodeTupleBatch(b *testing.B) {
	batch := benchBatch(64)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeTupleBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := GetBuffer()
			payload, err := AppendTupleBatch(*buf, batch)
			if err != nil {
				b.Fatal(err)
			}
			*buf = payload
			PutBuffer(buf)
		}
	})
}

// benchDupBatch is a 64-row batch whose values cycle through `distinct`
// variants per column — the duplicate-heavy shape the dictionary encoding is
// built for.
func benchDupBatch(distinct int) *TupleBatch {
	b := &TupleBatch{SessionID: 7, Seq: 3}
	for i := 0; i < 64; i++ {
		b.Tuples = append(b.Tuples, types.NewTuple(
			types.NewString(fmt.Sprintf("C%03d-abcdefghijklmnopqrstuvwxyz", i%distinct)),
			types.NewFloat(float64(i%distinct)),
			types.NewInt(int64(i%distinct)),
			types.NewTimeSeries(types.NewSeries(100, 100+float64(i%distinct))),
		))
	}
	return b
}

func BenchmarkDictBatchEncode(b *testing.B) {
	for _, distinct := range []int{4, 16, 64} {
		batch := benchDupBatch(distinct)
		plain, err := EncodeTupleBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("distinct%d", distinct), func(b *testing.B) {
			b.ReportAllocs()
			var wireBytes int
			for i := 0; i < b.N; i++ {
				buf := GetBuffer()
				payload, _, err := AppendTupleBatchAuto(*buf, batch)
				if err != nil {
					b.Fatal(err)
				}
				wireBytes = len(payload)
				*buf = payload
				PutBuffer(buf)
			}
			b.ReportMetric(float64(wireBytes), "wire-B/frame")
			b.ReportMetric(float64(len(plain)), "plain-B/frame")
		})
	}
}

func BenchmarkDictBatchDecode(b *testing.B) {
	for _, distinct := range []int{4, 64} {
		payload, err := AppendTupleBatchDict(nil, benchDupBatch(distinct))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("distinct%d", distinct), func(b *testing.B) {
			b.ReportAllocs()
			var batch TupleBatch
			for i := 0; i < b.N; i++ {
				if err := DecodeDictBatchInto(&batch, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeTupleBatch(b *testing.B) {
	payload, err := EncodeTupleBatch(benchBatch(64))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeTupleBatch(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		var batch TupleBatch
		for i := 0; i < b.N; i++ {
			if err := DecodeTupleBatchInto(&batch, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
