package wire

import (
	"fmt"
	"testing"

	"csq/internal/types"
)

// The codec benchmarks compare the allocating encode/decode entry points with
// the pooled/arena-based ones the operators use. cmd/benchrun runs them and
// folds the numbers into BENCH_exec.json.

func benchBatch(n int) *TupleBatch {
	b := &TupleBatch{SessionID: 7, Seq: 3}
	for i := 0; i < n; i++ {
		b.Tuples = append(b.Tuples, types.NewTuple(
			types.NewString(fmt.Sprintf("C%03d", i)),
			types.NewFloat(float64(i)),
			types.NewInt(int64(i)),
			types.NewTimeSeries(types.NewSeries(100, 100+float64(i))),
		))
	}
	return b
}

func BenchmarkEncodeTupleBatch(b *testing.B) {
	batch := benchBatch(64)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeTupleBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := GetBuffer()
			payload, err := AppendTupleBatch(*buf, batch)
			if err != nil {
				b.Fatal(err)
			}
			*buf = payload
			PutBuffer(buf)
		}
	})
}

func BenchmarkDecodeTupleBatch(b *testing.B) {
	payload, err := EncodeTupleBatch(benchBatch(64))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeTupleBatch(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		var batch TupleBatch
		for i := 0; i < b.N; i++ {
			if err := DecodeTupleBatchInto(&batch, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
