package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"csq/internal/types"
)

// bufPool recycles encode buffers across frames. Hot senders (the semi-join
// and client-join pipelines) encode one frame, hand it to Conn.Send (which
// copies it into the bufio writer), and return the buffer immediately, so the
// steady state allocates nothing per frame.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuffer returns a pooled, zero-length byte slice to encode a frame into.
// Return it with PutBuffer once the frame has been handed to Conn.Send.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns an encode buffer to the pool. The caller must not touch
// the slice afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > MaxFrameSize {
		return
	}
	bufPool.Put(b)
}

// Payload encoders and decoders for the message bodies defined in wire.go.
// They use the same primitives as the tuple encoding (uvarint lengths,
// little-endian fixed-width numbers) so that the cost model's byte accounting
// stays faithful.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(src []byte) (string, int, error) {
	n, c := binary.Uvarint(src)
	if c <= 0 || uint64(len(src)-c) < n {
		return "", 0, fmt.Errorf("wire: bad string")
	}
	return string(src[c : c+int(n)]), c + int(n), nil
}

func appendInts(dst []byte, xs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.AppendUvarint(dst, uint64(x))
	}
	return dst
}

func readInts(src []byte) ([]int, int, error) {
	n, c := binary.Uvarint(src)
	if c <= 0 || n > 1<<16 {
		return nil, 0, fmt.Errorf("wire: bad int list length")
	}
	off := c
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		v, c := binary.Uvarint(src[off:])
		if c <= 0 {
			return nil, 0, fmt.Errorf("wire: bad int list entry")
		}
		out = append(out, int(v))
		off += c
	}
	return out, off, nil
}

// EncodeSetup serialises a SetupRequest.
func EncodeSetup(s *SetupRequest) ([]byte, error) {
	if s.InputSchema == nil {
		return nil, fmt.Errorf("wire: setup requires an input schema")
	}
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, s.SessionID)
	dst = append(dst, byte(s.Mode))
	flags := byte(0)
	if s.FinalDelivery {
		flags |= 1
	}
	if s.DictBatches {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = types.EncodeSchema(dst, s.InputSchema)
	dst = binary.AppendUvarint(dst, uint64(len(s.UDFs)))
	for _, u := range s.UDFs {
		dst = appendString(dst, u.Name)
		dst = appendInts(dst, u.ArgOrdinals)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.PushablePredicate)))
	dst = append(dst, s.PushablePredicate...)
	dst = appendInts(dst, s.ProjectOrdinals)
	return dst, nil
}

// DecodeSetup deserialises a SetupRequest.
func DecodeSetup(src []byte) (*SetupRequest, error) {
	if len(src) < 10 {
		return nil, fmt.Errorf("wire: setup payload too short")
	}
	s := &SetupRequest{}
	s.SessionID = binary.LittleEndian.Uint64(src)
	s.Mode = Mode(src[8])
	s.FinalDelivery = src[9]&1 != 0
	s.DictBatches = src[9]&2 != 0
	off := 10
	schema, n, err := types.DecodeSchema(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: setup schema: %w", err)
	}
	s.InputSchema = schema
	off += n
	count, c := binary.Uvarint(src[off:])
	if c <= 0 || count > 256 {
		return nil, fmt.Errorf("wire: setup: bad UDF count")
	}
	off += c
	for i := uint64(0); i < count; i++ {
		name, n, err := readString(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		ords, n, err := readInts(src[off:])
		if err != nil {
			return nil, err
		}
		off += n
		s.UDFs = append(s.UDFs, UDFSpec{Name: name, ArgOrdinals: ords})
	}
	predLen, c := binary.Uvarint(src[off:])
	if c <= 0 || uint64(len(src)-off-c) < predLen {
		return nil, fmt.Errorf("wire: setup: bad predicate length")
	}
	off += c
	if predLen > 0 {
		s.PushablePredicate = append([]byte(nil), src[off:off+int(predLen)]...)
	}
	off += int(predLen)
	ords, n, err := readInts(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: setup: projection: %w", err)
	}
	off += n
	if len(ords) > 0 {
		s.ProjectOrdinals = ords
	}
	if off != len(src) {
		return nil, fmt.Errorf("wire: setup: %d trailing bytes", len(src)-off)
	}
	return s, nil
}

// EncodeSetupAck serialises a SetupAck. The capability flags ride in a
// trailing byte that pre-dictionary decoders (which stop after the error
// string) simply never look at.
func EncodeSetupAck(a *SetupAck) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, a.SessionID)
	if a.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendString(dst, a.Error)
	caps := byte(0)
	if a.DictBatches {
		caps |= 1
	}
	dst = append(dst, caps)
	return dst
}

// DecodeSetupAck deserialises a SetupAck. Acks from pre-dictionary clients
// lack the trailing capability byte; every capability then reads as false.
func DecodeSetupAck(src []byte) (*SetupAck, error) {
	if len(src) < 9 {
		return nil, fmt.Errorf("wire: setup ack too short")
	}
	a := &SetupAck{SessionID: binary.LittleEndian.Uint64(src), OK: src[8] != 0}
	msg, n, err := readString(src[9:])
	if err != nil {
		return nil, err
	}
	a.Error = msg
	if len(src) > 9+n {
		a.DictBatches = src[9+n]&1 != 0
	}
	return a, nil
}

// AppendTupleBatch appends the serialisation of a TupleBatch to dst and
// returns the extended slice. Pair it with GetBuffer/PutBuffer to encode
// frames without allocating.
func AppendTupleBatch(dst []byte, b *TupleBatch) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint64(dst, b.SessionID)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(b.Tuples)))
	var err error
	for _, t := range b.Tuples {
		dst, err = types.EncodeTuple(dst, t)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// EncodeTupleBatch serialises a TupleBatch into a fresh buffer.
func EncodeTupleBatch(b *TupleBatch) ([]byte, error) {
	return AppendTupleBatch(nil, b)
}

// DecodeTupleBatchInto deserialises a TupleBatch into b, reusing b.Tuples'
// capacity. All decoded values of the frame share one freshly allocated
// backing arena, so decoding costs O(1) allocations per frame instead of one
// per tuple. The arena is never recycled: tuples handed out stay valid
// indefinitely, but retaining a single tuple pins the whole frame's values.
func DecodeTupleBatchInto(b *TupleBatch, src []byte) error {
	if len(src) < 16 {
		return fmt.Errorf("wire: tuple batch too short")
	}
	b.SessionID = binary.LittleEndian.Uint64(src)
	b.Seq = binary.LittleEndian.Uint64(src[8:])
	off := 16
	n, c := binary.Uvarint(src[off:])
	if c <= 0 || n > 1<<24 {
		return fmt.Errorf("wire: tuple batch: bad count")
	}
	off += c
	if b.Tuples == nil || cap(b.Tuples) < int(n) {
		b.Tuples = make([]types.Tuple, 0, n)
	} else {
		b.Tuples = b.Tuples[:0]
	}
	// Decode every value into one shared arena, remembering where each tuple
	// starts; the arena may move while growing, so tuples are sliced out only
	// after the whole frame is decoded.
	arena := make([]types.Value, 0, 4*n)
	starts := make([]int, 0, n+1)
	for i := uint64(0); i < n; i++ {
		starts = append(starts, len(arena))
		var err error
		arena, _, c, err = types.DecodeTupleAppend(arena, src[off:])
		if err != nil {
			return fmt.Errorf("wire: tuple batch row %d: %w", i, err)
		}
		off += c
	}
	starts = append(starts, len(arena))
	for i := 0; i < int(n); i++ {
		b.Tuples = append(b.Tuples, types.Tuple(arena[starts[i]:starts[i+1]:starts[i+1]]))
	}
	if off != len(src) {
		return fmt.Errorf("wire: tuple batch: %d trailing bytes", len(src)-off)
	}
	return nil
}

// DecodeTupleBatch deserialises a TupleBatch.
func DecodeTupleBatch(src []byte) (*TupleBatch, error) {
	b := &TupleBatch{}
	if err := DecodeTupleBatchInto(b, src); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeError serialises an ErrorMsg.
func EncodeError(e *ErrorMsg) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, e.SessionID)
	dst = appendString(dst, e.Message)
	return dst
}

// DecodeError deserialises an ErrorMsg.
func DecodeError(src []byte) (*ErrorMsg, error) {
	if len(src) < 9 {
		return nil, fmt.Errorf("wire: error message too short")
	}
	e := &ErrorMsg{SessionID: binary.LittleEndian.Uint64(src)}
	msg, _, err := readString(src[8:])
	if err != nil {
		return nil, err
	}
	e.Message = msg
	return e, nil
}

// EncodeEnd serialises an End marker.
func EncodeEnd(e *End) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, e.SessionID)
	dst = binary.LittleEndian.AppendUint64(dst, e.Rows)
	return dst
}

// DecodeEnd deserialises an End marker.
func DecodeEnd(src []byte) (*End, error) {
	if len(src) < 16 {
		return nil, fmt.Errorf("wire: end message too short")
	}
	return &End{
		SessionID: binary.LittleEndian.Uint64(src),
		Rows:      binary.LittleEndian.Uint64(src[8:]),
	}, nil
}

// AppendProbe appends the serialisation of a Probe to dst. The payload is
// written verbatim so the frame size on the wire equals the probe size plus a
// fixed 8-byte header, keeping the probe's byte accounting exact.
func AppendProbe(dst []byte, p *Probe) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, p.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, p.EchoBytes)
	return append(dst, p.Payload...)
}

// DecodeProbe deserialises a Probe. The returned payload aliases src.
func DecodeProbe(src []byte) (*Probe, error) {
	if len(src) < 8 {
		return nil, fmt.Errorf("wire: probe too short")
	}
	return &Probe{
		Seq:       binary.LittleEndian.Uint32(src),
		EchoBytes: binary.LittleEndian.Uint32(src[4:]),
		Payload:   src[8:],
	}, nil
}

// EncodeRegisterUDF serialises a RegisterUDF announcement.
func EncodeRegisterUDF(r *RegisterUDF) []byte {
	var dst []byte
	dst = appendString(dst, r.Name)
	dst = binary.AppendUvarint(dst, uint64(len(r.ArgKinds)))
	for _, k := range r.ArgKinds {
		dst = append(dst, byte(k))
	}
	dst = append(dst, byte(r.ResultKind))
	dst = binary.AppendUvarint(dst, uint64(r.ResultSize))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Selectivity))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.PerCallCost))
	if r.Pure {
		dst = append(dst, 1)
	}
	return dst
}

// DecodeRegisterUDF deserialises a RegisterUDF announcement.
func DecodeRegisterUDF(src []byte) (*RegisterUDF, error) {
	r := &RegisterUDF{}
	name, off, err := readString(src)
	if err != nil {
		return nil, fmt.Errorf("wire: register udf: %w", err)
	}
	r.Name = name
	n, c := binary.Uvarint(src[off:])
	if c <= 0 || n > 64 || off+c+int(n) > len(src) {
		return nil, fmt.Errorf("wire: register udf: bad arg kinds")
	}
	off += c
	for i := uint64(0); i < n; i++ {
		r.ArgKinds = append(r.ArgKinds, types.Kind(src[off]))
		off++
	}
	if off >= len(src) {
		return nil, fmt.Errorf("wire: register udf: truncated")
	}
	r.ResultKind = types.Kind(src[off])
	off++
	size, c := binary.Uvarint(src[off:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: register udf: bad result size")
	}
	off += c
	if len(src)-off < 16 {
		return nil, fmt.Errorf("wire: register udf: truncated floats")
	}
	r.ResultSize = int(size)
	r.Selectivity = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
	r.PerCallCost = math.Float64frombits(binary.LittleEndian.Uint64(src[off+8:]))
	// Optional trailing purity byte: announcements from pre-purity clients
	// end at the floats and read as impure.
	if off+16 < len(src) {
		r.Pure = src[off+16] != 0
	}
	return r, nil
}
