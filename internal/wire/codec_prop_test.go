package wire

import (
	"math/rand"
	"testing"

	"csq/internal/types"
)

// randomValue draws one value of a random kind, including NULLs.
func randomValue(rng *rand.Rand) types.Value {
	switch rng.Intn(7) {
	case 0:
		return types.NewInt(rng.Int63() - rng.Int63())
	case 1:
		return types.NewFloat(rng.NormFloat64() * 1e6)
	case 2:
		return types.NewBool(rng.Intn(2) == 0)
	case 3:
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return types.NewString(string(b))
	case 4:
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return types.NewBytes(b)
	case 5:
		ts := make(types.TimeSeries, rng.Intn(8))
		for i := range ts {
			ts[i] = rng.Float64() * 1000
		}
		return types.NewTimeSeries(ts)
	default:
		kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindBool, types.KindString, types.KindBytes, types.KindTimeSeries}
		return types.Null(kinds[rng.Intn(len(kinds))])
	}
}

func randomBatch(rng *rand.Rand) *TupleBatch {
	b := &TupleBatch{SessionID: rng.Uint64(), Seq: rng.Uint64()}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		t := make(types.Tuple, rng.Intn(6))
		for j := range t {
			t[j] = randomValue(rng)
		}
		b.Tuples = append(b.Tuples, t)
	}
	return b
}

func requireBatchEqual(t *testing.T, want, got *TupleBatch) {
	t.Helper()
	if got.SessionID != want.SessionID || got.Seq != want.Seq {
		t.Fatalf("header mismatch: got (%d,%d), want (%d,%d)", got.SessionID, got.Seq, want.SessionID, want.Seq)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("tuple count = %d, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if !want.Tuples[i].Equal(got.Tuples[i]) {
			t.Fatalf("tuple %d = %v, want %v", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestTupleBatchRoundTripProperty encodes random batches and asserts both
// decode paths (fresh and arena-reusing) reproduce them exactly.
func TestTupleBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var reused TupleBatch
	var prev []types.Tuple // tuples of the previous round, re-checked below
	var prevBatch *TupleBatch
	for round := 0; round < 200; round++ {
		want := randomBatch(rng)
		payload, err := AppendTupleBatch(nil, want)
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		fresh, err := DecodeTupleBatch(payload)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		requireBatchEqual(t, want, fresh)
		if err := DecodeTupleBatchInto(&reused, payload); err != nil {
			t.Fatalf("round %d: decode into: %v", round, err)
		}
		requireBatchEqual(t, want, &reused)
		// Tuples handed out by the previous DecodeTupleBatchInto must stay
		// valid after the scratch batch is reused for this round.
		if prev != nil {
			for i := range prev {
				if !prev[i].Equal(prevBatch.Tuples[i]) {
					t.Fatalf("round %d: reuse clobbered tuple %d of previous frame", round, i)
				}
			}
		}
		prev = append(prev[:0], reused.Tuples...)
		prevBatch = want
	}
}

// TestTupleBatchAppendComposes asserts AppendTupleBatch really appends: a
// batch encoded after a prefix decodes identically from the offset.
func TestTupleBatchAppendComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	want := randomBatch(rng)
	prefix := []byte("prefix")
	payload, err := AppendTupleBatch(append([]byte(nil), prefix...), want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTupleBatch(payload[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	requireBatchEqual(t, want, got)
}

// TestDecodeTupleBatchErrors asserts corrupt payloads are rejected, not
// silently truncated.
func TestDecodeTupleBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	want := randomBatch(rng)
	payload, err := AppendTupleBatch(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTupleBatch(payload[:10]); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := DecodeTupleBatch(append(payload, 0xaa)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if len(want.Tuples) > 0 {
		if _, err := DecodeTupleBatch(payload[:len(payload)-1]); err == nil {
			t.Error("truncated payload should fail")
		}
	}
}

// TestBufferPool exercises the Get/Put cycle and the oversized-buffer guard.
func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer should be zero length, got %d", len(*b))
	}
	*b = append(*b, 1, 2, 3)
	PutBuffer(b)
	again := GetBuffer()
	if len(*again) != 0 {
		t.Fatalf("reused buffer should be reset, got %d", len(*again))
	}
	PutBuffer(again)
	PutBuffer(nil) // must not panic
}
