package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestReceiveDeadlineFromContext binds a connection to a context with a
// deadline and receives from a peer that never writes — the stalled-client
// scenario. The read must fail with context.DeadlineExceeded around the
// deadline instead of wedging forever.
func TestReceiveDeadlineFromContext(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	conn := NewConn(server)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	release := conn.BindContext(ctx)
	defer release()

	start := time.Now()
	_, err := conn.Receive()
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded from a stalled peer, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("receive took %v to fail; the deadline should have fired at ~150ms", elapsed)
	}
}

// TestReceiveAbortsOnCancel cancels the bound context while a receive is
// blocked on a silent peer; the receive must unblock promptly with
// context.Canceled.
func TestReceiveAbortsOnCancel(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	conn := NewConn(server)

	ctx, cancel := context.WithCancel(context.Background())
	release := conn.BindContext(ctx)
	defer release()

	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Receive()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("cancellation took %v to unblock the receive", d)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("receive still blocked 3s after cancellation")
	}
}

// TestSendAbortsOnCancel covers the write direction: the peer never reads
// (net.Pipe writes are fully synchronous), so the send blocks until the
// bound context is cancelled.
func TestSendAbortsOnCancel(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	conn := NewConn(server)

	ctx, cancel := context.WithCancel(context.Background())
	release := conn.BindContext(ctx)
	defer release()

	errCh := make(chan error, 1)
	go func() {
		errCh <- conn.Send(MsgProbe, make([]byte, 1<<20))
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled from blocked send, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("send still blocked 3s after cancellation")
	}
}

// TestReleaseRestoresConnection verifies that releasing an unexpired binding
// clears the transport deadlines, leaving the connection usable for the next
// query.
func TestReleaseRestoresConnection(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	sconn, cconn := NewConn(server), NewConn(client)

	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	release := sconn.BindContext(ctx)
	release()
	cancel()

	go func() {
		_ = cconn.Send(MsgEnd, EncodeEnd(&End{SessionID: 7}))
	}()
	msg, err := sconn.Receive()
	if err != nil {
		t.Fatalf("receive after release: %v", err)
	}
	if msg.Type != MsgEnd {
		t.Fatalf("got %s, want END", msg.Type)
	}
}
