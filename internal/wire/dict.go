package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"csq/internal/types"
)

// Per-batch value dictionary encoding of tuple batches.
//
// A dictionary frame encodes each distinct column value of the batch exactly
// once and represents rows as uvarint indices into that dictionary, so a
// duplicate-heavy batch costs one encoding per distinct value plus one or two
// index bytes per occurrence instead of re-encoding every occurrence. The
// layout is:
//
//	SessionID u64 | Seq u64
//	dictCount uvarint | dictCount value encodings (types.EncodeValue)
//	rowCount uvarint | per row: colCount uvarint, colCount dict indices (uvarint)
//
// Distinctness is byte-level: the value encoding is deterministic, so equal
// values produce equal encodings and the encoder dedups by comparing encoded
// bytes (hash-chained). The encoding is only used on sessions that negotiated
// it (SetupRequest.DictBatches echoed by SetupAck.DictBatches), and only for
// frames it actually shrinks — AppendTupleBatchAuto falls back to the plain
// encoding otherwise, so the dictionary never costs bytes.

// dictEncoder is the reusable state of one dictionary encoding pass.
type dictEncoder struct {
	chains map[uint64][]int32 // value hash → dict entry indices
	offs   []int              // offs[i]..offs[i+1] bounds entry i in vals
	vals   []byte             // concatenated distinct value encodings
	rows   []byte             // row section: per row, colCount + indices
	// plainValBytes accumulates what the batch's values would cost in the
	// plain encoding (every occurrence re-encoded), for the auto decision.
	plainValBytes int
}

var dictEncPool = sync.Pool{New: func() any {
	return &dictEncoder{chains: make(map[uint64][]int32)}
}}

func (e *dictEncoder) reset() {
	clear(e.chains)
	e.offs = append(e.offs[:0], 0)
	e.vals = e.vals[:0]
	e.rows = e.rows[:0]
	e.plainValBytes = 0
}

// addValue interns v and returns its dictionary index.
func (e *dictEncoder) addValue(v types.Value) (int32, error) {
	h := v.Hash()
	start := len(e.vals)
	vals, err := types.EncodeValue(e.vals, v)
	if err != nil {
		return 0, err
	}
	e.vals = vals
	enc := e.vals[start:]
	e.plainValBytes += len(enc)
	for _, idx := range e.chains[h] {
		if bytes.Equal(e.vals[e.offs[idx]:e.offs[idx+1]], enc) {
			e.vals = e.vals[:start] // duplicate: drop the re-encoding
			return idx, nil
		}
	}
	idx := int32(len(e.offs) - 1)
	e.offs = append(e.offs, len(e.vals))
	e.chains[h] = append(e.chains[h], idx)
	return idx, nil
}

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// AppendTupleBatchDict appends the dictionary encoding of b to dst.
func AppendTupleBatchDict(dst []byte, b *TupleBatch) ([]byte, error) {
	out, _, err := appendTupleBatchChoosing(dst, b, false)
	return out, err
}

// AppendTupleBatchAuto appends whichever of the dictionary and plain
// encodings of b is smaller and reports whether the dictionary form was used
// (the caller picks the matching message type). Pair it with
// GetBuffer/PutBuffer like AppendTupleBatch.
func AppendTupleBatchAuto(dst []byte, b *TupleBatch) ([]byte, bool, error) {
	return appendTupleBatchChoosing(dst, b, true)
}

func appendTupleBatchChoosing(dst []byte, b *TupleBatch, auto bool) ([]byte, bool, error) {
	e := dictEncPool.Get().(*dictEncoder)
	defer dictEncPool.Put(e)
	e.reset()
	plainSize := 16 + uvarintLen(uint64(len(b.Tuples)))
	for _, t := range b.Tuples {
		plainSize += uvarintLen(uint64(len(t)))
		e.rows = binary.AppendUvarint(e.rows, uint64(len(t)))
		for _, v := range t {
			idx, err := e.addValue(v)
			if err != nil {
				return nil, false, err
			}
			e.rows = binary.AppendUvarint(e.rows, uint64(idx))
		}
	}
	plainSize += e.plainValBytes
	entries := len(e.offs) - 1
	dictSize := 16 + uvarintLen(uint64(entries)) + len(e.vals) +
		uvarintLen(uint64(len(b.Tuples))) + len(e.rows)
	if auto && dictSize >= plainSize {
		// Assemble the plain encoding from the bytes the dictionary pass
		// already produced — the value encodings in vals, addressed through
		// the row indices — instead of re-encoding every occurrence.
		dst = binary.LittleEndian.AppendUint64(dst, b.SessionID)
		dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(b.Tuples)))
		off := 0
		for range b.Tuples {
			cols, c := binary.Uvarint(e.rows[off:])
			off += c
			dst = binary.AppendUvarint(dst, cols)
			for j := uint64(0); j < cols; j++ {
				idx, c := binary.Uvarint(e.rows[off:])
				off += c
				dst = append(dst, e.vals[e.offs[idx]:e.offs[idx+1]]...)
			}
		}
		return dst, false, nil
	}
	dst = binary.LittleEndian.AppendUint64(dst, b.SessionID)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.AppendUvarint(dst, uint64(entries))
	dst = append(dst, e.vals...)
	dst = binary.AppendUvarint(dst, uint64(len(b.Tuples)))
	dst = append(dst, e.rows...)
	return dst, true, nil
}

// SendBatch encodes b — with the per-batch value dictionary when dict is set
// and it shrinks the frame — and sends it on conn, using plainType or
// dictType to match the encoding actually emitted. Encoding goes through a
// pooled buffer so the steady state allocates nothing per frame. It is the
// single send path shared by the server operators (tuple frames) and the
// client runtime (result frames).
func SendBatch(conn *Conn, b *TupleBatch, dict bool, plainType, dictType MsgType) error {
	buf := GetBuffer()
	var payload []byte
	var err error
	msgType := plainType
	if dict {
		var usedDict bool
		payload, usedDict, err = AppendTupleBatchAuto(*buf, b)
		if usedDict {
			msgType = dictType
		}
	} else {
		payload, err = AppendTupleBatch(*buf, b)
	}
	if err != nil {
		PutBuffer(buf)
		return err
	}
	err = conn.Send(msgType, payload)
	*buf = payload
	PutBuffer(buf)
	return err
}

// DecodeDictBatchInto deserialises a dictionary-encoded TupleBatch into b,
// reusing b.Tuples' capacity. Like DecodeTupleBatchInto, all decoded values
// of the frame live in freshly allocated arenas that are never recycled, so
// the tuples handed out stay valid indefinitely; rows share the dictionary's
// value entries rather than carrying copies.
func DecodeDictBatchInto(b *TupleBatch, src []byte) error {
	if len(src) < 16 {
		return fmt.Errorf("wire: dict batch too short")
	}
	b.SessionID = binary.LittleEndian.Uint64(src)
	b.Seq = binary.LittleEndian.Uint64(src[8:])
	off := 16
	entries, c := binary.Uvarint(src[off:])
	if c <= 0 || entries > 1<<24 {
		return fmt.Errorf("wire: dict batch: bad dictionary size")
	}
	off += c
	dict := make([]types.Value, 0, entries)
	for i := uint64(0); i < entries; i++ {
		v, used, err := types.DecodeValue(src[off:])
		if err != nil {
			return fmt.Errorf("wire: dict batch entry %d: %w", i, err)
		}
		dict = append(dict, v)
		off += used
	}
	n, c := binary.Uvarint(src[off:])
	if c <= 0 || n > 1<<24 {
		return fmt.Errorf("wire: dict batch: bad row count")
	}
	off += c
	if b.Tuples == nil || cap(b.Tuples) < int(n) {
		b.Tuples = make([]types.Tuple, 0, n)
	} else {
		b.Tuples = b.Tuples[:0]
	}
	// Rows are assembled in one shared arena of dictionary references; the
	// arena may move while growing, so tuples are sliced out afterwards.
	arena := make([]types.Value, 0, 4*n)
	starts := make([]int, 0, n+1)
	for i := uint64(0); i < n; i++ {
		starts = append(starts, len(arena))
		cols, c := binary.Uvarint(src[off:])
		if c <= 0 || cols > 1<<20 {
			return fmt.Errorf("wire: dict batch row %d: bad column count", i)
		}
		off += c
		for j := uint64(0); j < cols; j++ {
			idx, c := binary.Uvarint(src[off:])
			if c <= 0 {
				return fmt.Errorf("wire: dict batch row %d: bad index", i)
			}
			if idx >= entries {
				return fmt.Errorf("wire: dict batch row %d: index %d outside dictionary of %d", i, idx, entries)
			}
			off += c
			arena = append(arena, dict[idx])
		}
	}
	starts = append(starts, len(arena))
	for i := 0; i < int(n); i++ {
		b.Tuples = append(b.Tuples, types.Tuple(arena[starts[i]:starts[i+1]:starts[i+1]]))
	}
	if off != len(src) {
		return fmt.Errorf("wire: dict batch: %d trailing bytes", len(src)-off)
	}
	return nil
}

// DecodeDictBatch deserialises a dictionary-encoded TupleBatch.
func DecodeDictBatch(src []byte) (*TupleBatch, error) {
	b := &TupleBatch{}
	if err := DecodeDictBatchInto(b, src); err != nil {
		return nil, err
	}
	return b, nil
}
