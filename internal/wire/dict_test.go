package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"csq/internal/types"
)

// dupBatch builds a batch of n rows whose column values cycle through a small
// pool, giving heavy per-batch value duplication.
func dupBatch(n, distinct int) *TupleBatch {
	b := &TupleBatch{SessionID: 5, Seq: 9}
	for i := 0; i < n; i++ {
		b.Tuples = append(b.Tuples, types.NewTuple(
			types.NewString(fmt.Sprintf("blob-%04d-%s", i%distinct, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")),
			types.NewInt(int64(i%distinct)),
			types.NewFloat(float64(i%distinct)),
		))
	}
	return b
}

// TestDictBatchRoundTripProperty mirrors the plain-batch property test for
// the dictionary encoding: random batches survive both decode paths, and
// tuples from a previous frame stay valid after the scratch is reused.
func TestDictBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var reused TupleBatch
	var prev []types.Tuple
	var prevBatch *TupleBatch
	for round := 0; round < 200; round++ {
		want := randomBatch(rng)
		payload, err := AppendTupleBatchDict(nil, want)
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		fresh, err := DecodeDictBatch(payload)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		requireBatchEqual(t, want, fresh)
		if err := DecodeDictBatchInto(&reused, payload); err != nil {
			t.Fatalf("round %d: decode into: %v", round, err)
		}
		requireBatchEqual(t, want, &reused)
		// The auto encoder must emit either a valid dictionary frame or the
		// exact plain encoding, whichever is smaller.
		auto, usedDict, err := AppendTupleBatchAuto(nil, want)
		if err != nil {
			t.Fatalf("round %d: auto encode: %v", round, err)
		}
		if usedDict {
			got, err := DecodeDictBatch(auto)
			if err != nil {
				t.Fatalf("round %d: decode auto dict: %v", round, err)
			}
			requireBatchEqual(t, want, got)
			if len(auto) > len(payload) {
				t.Fatalf("round %d: auto dict frame larger than direct dict encoding", round)
			}
		} else {
			plain, err := AppendTupleBatch(nil, want)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(auto, plain) {
				t.Fatalf("round %d: auto fallback differs from plain encoding", round)
			}
		}
		if prev != nil {
			for i := range prev {
				if !prev[i].Equal(prevBatch.Tuples[i]) {
					t.Fatalf("round %d: reuse clobbered tuple %d of previous frame", round, i)
				}
			}
		}
		prev = append(prev[:0], reused.Tuples...)
		prevBatch = want
	}
}

// TestDictBatchShrinksDuplicates pins the point of the encoding: a
// duplicate-heavy batch must get substantially smaller, and the auto encoder
// must pick the dictionary form for it.
func TestDictBatchShrinksDuplicates(t *testing.T) {
	b := dupBatch(64, 4)
	plain, err := AppendTupleBatch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	payload, usedDict, err := AppendTupleBatchAuto(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if !usedDict {
		t.Fatal("auto encoder should pick the dictionary for a duplicate-heavy batch")
	}
	if len(payload)*2 > len(plain) {
		t.Errorf("dict batch = %d bytes, plain = %d; want at least 2x smaller", len(payload), len(plain))
	}
	got, err := DecodeDictBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	requireBatchEqual(t, b, got)
}

// TestDictBatchAutoFallsBack asserts the auto encoder never loses bytes: on
// an all-distinct batch it emits the plain encoding.
func TestDictBatchAutoFallsBack(t *testing.T) {
	b := dupBatch(32, 32)
	plain, err := AppendTupleBatch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	payload, usedDict, err := AppendTupleBatchAuto(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if usedDict {
		t.Fatal("auto encoder used the dictionary on an all-distinct batch")
	}
	// The fallback is assembled from the dictionary pass's encoded bytes; it
	// must be byte-identical to the direct plain encoding.
	if !bytes.Equal(payload, plain) {
		t.Errorf("fallback payload (%d bytes) differs from AppendTupleBatch output (%d bytes)", len(payload), len(plain))
	}
	if _, err := DecodeTupleBatch(payload); err != nil {
		t.Errorf("fallback payload must be a valid plain batch: %v", err)
	}

	// Empty batches (the client's FinalDelivery acknowledgements) must work
	// in both encodings.
	empty := &TupleBatch{SessionID: 1, Seq: 2}
	payload, _, err = AppendTupleBatchAuto(nil, empty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTupleBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	requireBatchEqual(t, empty, got)
	payload, err = AppendTupleBatchDict(nil, empty)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeDictBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	requireBatchEqual(t, empty, got)
}

// TestDecodeDictBatchErrors asserts corrupt dictionary payloads are rejected.
func TestDecodeDictBatchErrors(t *testing.T) {
	payload, err := AppendTupleBatchDict(nil, dupBatch(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDictBatch(payload[:10]); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := DecodeDictBatch(append(append([]byte(nil), payload...), 0xaa)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if _, err := DecodeDictBatch(payload[:len(payload)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	// An out-of-range dictionary index must be caught, not read past the
	// dictionary: flip the last row's last index to a large varint.
	bad := append([]byte(nil), payload...)
	bad[len(bad)-1] = 0x7f
	if _, err := DecodeDictBatch(bad); err == nil {
		t.Error("out-of-range dictionary index should fail")
	}
}

// TestSetupDictNegotiation pins the negotiation bits: the request flag and
// the ack capability byte round-trip, and an old-format ack (without the
// capability byte) reads as "no dictionary support".
func TestSetupDictNegotiation(t *testing.T) {
	req := &SetupRequest{SessionID: 2, Mode: ModeSemiJoin, InputSchema: shippedSchema(), DictBatches: true}
	data, err := EncodeSetup(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSetup(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.DictBatches {
		t.Error("DictBatches flag lost in setup round trip")
	}

	ack := &SetupAck{SessionID: 2, OK: true, DictBatches: true}
	back, err := DecodeSetupAck(EncodeSetupAck(ack))
	if err != nil {
		t.Fatal(err)
	}
	if !back.DictBatches {
		t.Error("DictBatches capability lost in ack round trip")
	}
	// Pre-dictionary ack: sessionID + ok + empty error string, no capability
	// byte. Must decode cleanly with DictBatches false.
	old := EncodeSetupAck(&SetupAck{SessionID: 2, OK: true})
	old = old[:len(old)-1]
	back, err = DecodeSetupAck(old)
	if err != nil {
		t.Fatal(err)
	}
	if back.DictBatches {
		t.Error("old-format ack must read as no dictionary support")
	}
}
