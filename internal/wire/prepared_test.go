package wire

import (
	"reflect"
	"testing"
)

// TestExecPreparedRoundTrip checks the prepared-execution frame survives the
// wire with every field intact, including the zero-valued "inherit the
// statement's settings" form.
func TestExecPreparedRoundTrip(t *testing.T) {
	full := &ExecPrepared{
		StatementID:   7,
		QueryID:       901,
		MemBudget:     64 << 20,
		TimeoutMillis: 2500,
		Tenant:        "acme",
	}
	got, err := DecodeExecPrepared(EncodeExecPrepared(full))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, got) {
		t.Errorf("round trip = %+v, want %+v", got, full)
	}

	inherit := &ExecPrepared{StatementID: 1, QueryID: 2}
	got, err = DecodeExecPrepared(EncodeExecPrepared(inherit))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inherit, got) {
		t.Errorf("zero-override round trip = %+v, want %+v", got, inherit)
	}
}

// TestExecPreparedDecodeRejectsMalformed: truncations and trailing garbage
// must fail loudly, never decode to a plausible frame.
func TestExecPreparedDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeExecPrepared(&ExecPrepared{StatementID: 3, QueryID: 4, Tenant: "t"})
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeExecPrepared(valid[:i]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", i)
		}
	}
	if _, err := DecodeExecPrepared(append(append([]byte(nil), valid...), 0xFF)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}

// TestQuerySpecTenantTrailer pins the optional-trailer compatibility scheme:
// a spec without text or tenant encodes byte-identically to the pre-trailer
// format (so old servers still parse it), and the tenant trailer always rides
// behind an explicit text field so the trailer order is unambiguous.
func TestQuerySpecTenantTrailer(t *testing.T) {
	base := &QuerySpec{QueryID: 11, Caps: CapCancel, Table: "trades", ClientAddr: "127.0.0.1:9"}

	// No text, no tenant: decoding must yield both empty, and appending the
	// trailers must be the only difference from the tenant-bearing form.
	plain, err := EncodeQuerySpec(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuerySpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != "" || got.Tenant != "" {
		t.Fatalf("plain spec decoded with trailers: text=%q tenant=%q", got.Text, got.Tenant)
	}

	withTenant := *base
	withTenant.Tenant = "acme"
	enc, err := EncodeQuerySpec(&withTenant)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) <= len(plain) {
		t.Fatal("tenant trailer did not extend the encoding")
	}
	if string(enc[:len(plain)]) != string(plain) {
		t.Fatal("tenant-bearing spec is not a pure extension of the plain encoding")
	}
	got, err = DecodeQuerySpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "acme" || got.Text != "" {
		t.Fatalf("tenant round trip = text %q tenant %q", got.Text, got.Tenant)
	}

	// Text and tenant together.
	both := *base
	both.Text = "q(X) :- trades(X, _, _, _)."
	both.Tenant = "beta"
	got, err = DecodeQuerySpec(mustEncodeSpec(t, &both))
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != both.Text || got.Tenant != both.Tenant {
		t.Fatalf("text+tenant round trip = text %q tenant %q", got.Text, got.Tenant)
	}

	// An old requester's encoding (text trailer only) reads as the default
	// tenant, never an error.
	textOnly := *base
	textOnly.Text = "q(X) :- trades(X, _, _, _)."
	got, err = DecodeQuerySpec(mustEncodeSpec(t, &textOnly))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "" {
		t.Fatalf("text-only spec decoded tenant %q, want empty", got.Tenant)
	}
}

func mustEncodeSpec(t *testing.T, q *QuerySpec) []byte {
	t.Helper()
	enc, err := EncodeQuerySpec(q)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestRegisterUDFPurityCompat pins the optional purity byte: pure
// announcements round-trip, impure ones encode without the byte (the
// pre-purity format), and a pre-purity announcement decodes as impure.
func TestRegisterUDFPurityCompat(t *testing.T) {
	pure := &RegisterUDF{Name: "det", ResultKind: 1, Pure: true}
	enc := EncodeRegisterUDF(pure)
	got, err := DecodeRegisterUDF(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pure {
		t.Fatal("pure flag lost in round trip")
	}

	impure := &RegisterUDF{Name: "det", ResultKind: 1}
	oldEnc := EncodeRegisterUDF(impure)
	if len(oldEnc) != len(enc)-1 {
		t.Fatalf("impure encoding is %d bytes, want the pre-purity %d (no trailing byte)",
			len(oldEnc), len(enc)-1)
	}
	// The pure encoding minus its trailer IS the old format; it must decode
	// as impure, not fail.
	got, err = DecodeRegisterUDF(enc[:len(enc)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Pure {
		t.Fatal("pre-purity announcement decoded as pure")
	}
}

// TestPreparedMsgTypeStrings: the new frame types must render distinct,
// non-empty names in logs.
func TestPreparedMsgTypeStrings(t *testing.T) {
	seen := map[string]MsgType{}
	for _, mt := range []MsgType{MsgPrepare, MsgPrepareAck, MsgExecPrepared, MsgQueryReject} {
		s := mt.String()
		if s == "" || s == "INVALID" {
			t.Errorf("MsgType(%d) renders %q", mt, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("MsgType %d and %d share the name %q", prev, mt, s)
		}
		seen[s] = mt
	}
}
