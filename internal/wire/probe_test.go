package wire

import (
	"bytes"
	"fmt"
	"net"
	"testing"
)

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{Seq: 7, EchoBytes: 1024, Payload: bytes.Repeat([]byte{0xab}, 300)}
	enc := AppendProbe(nil, &p)
	if len(enc) != 8+300 {
		t.Fatalf("encoded probe length = %d, want %d", len(enc), 8+300)
	}
	got, err := DecodeProbe(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.EchoBytes != 1024 || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("probe round trip mismatch: %+v", got)
	}
	if _, err := DecodeProbe([]byte{1, 2}); err == nil {
		t.Error("truncated probe should fail to decode")
	}
}

func TestConnTimeCounters(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		msg, err := cb.Receive()
		if err == nil && msg.Type != MsgProbe {
			err = fmt.Errorf("received %s, want PROBE", msg.Type)
		}
		done <- err
	}()
	if err := ca.Send(MsgProbe, AppendProbe(nil, &Probe{Seq: 1})); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ca.SendTime() <= 0 {
		t.Errorf("SendTime should accumulate, got %v", ca.SendTime())
	}
	if cb.ReceiveTime() <= 0 {
		t.Errorf("ReceiveTime should accumulate, got %v", cb.ReceiveTime())
	}
	_ = ca.Close()
	_ = cb.Close()
}
