package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Query-service framing: a requester submits queries to a running query
// service (cmd/udfserverd) over the same framed protocol the UDF sessions
// speak. The control conversation is
//
//	requester → server   MsgRegisterUDF*  (optional: announce client UDFs)
//	requester → server   MsgQuery{QuerySpec}
//	server → requester   MsgQueryAck{OK, Caps}
//	server → requester   MsgResultBatch*  (SessionID = QueryID)
//	server → requester   MsgEnd{Rows}  |  MsgError
//	requester → server   MsgCancel{QueryID}  (any time after an ack with CapCancel)
//
// One connection multiplexes any number of concurrent queries; frames carry
// the query ID the way UDF session frames carry the session ID.

// Capability bits carried in QuerySpec.Caps and echoed (intersected with what
// the server supports) in QueryAck.Caps. Like the dict-batch flag, a
// capability is only used once the peer has echoed it, so old requesters and
// old servers interoperate on the base protocol.
const (
	// CapCancel: the server accepts MsgCancel for this query.
	CapCancel uint32 = 1 << 0
	// CapStats: the server appends a lifecycle-stats line to the final MsgEnd
	// (reserved; not yet populated).
	CapStats uint32 = 1 << 1
	// CapTextQuery: the server parses, resolves and plans textual queries
	// carried in QuerySpec.Text. Requesters must not send Text to a server
	// that has not echoed this bit.
	CapTextQuery uint32 = 1 << 2
	// CapReject: the server terminates shed or drained queries with a typed
	// MsgQueryReject (reason + retry-after hint) instead of a generic
	// MsgError, so the requester can classify the refusal as retryable.
	CapReject uint32 = 1 << 3
	// CapPrepared: the server accepts MsgPrepare / MsgExecPrepared prepared-
	// statement frames. Requesters must not send them to a server that has not
	// echoed this bit in a MsgQueryAck or MsgPrepareAck.
	CapPrepared uint32 = 1 << 4
)

// RejectReason explains why the server refused to run a query.
type RejectReason uint8

const (
	// RejectOverloaded: the admission queue was full or the query's deadline
	// left no useful queueing budget; the query never ran and is safe to
	// resubmit after the retry-after hint.
	RejectOverloaded RejectReason = iota
	// RejectDraining: the server is shutting down gracefully and shed the
	// query before it ran; resubmit against another (or the restarted)
	// server.
	RejectDraining
)

// String names the reason for logs and error messages.
func (r RejectReason) String() string {
	switch r {
	case RejectOverloaded:
		return "overloaded"
	case RejectDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// ErrOverloaded is the sentinel a shed query's error unwraps to: the server
// refused the query under load without running any of it, so an idempotent
// resubmission is safe. Classify reports it retryable.
var ErrOverloaded = errors.New("wire: server overloaded, query shed")

// ErrServerDraining is the sentinel a drained query's error unwraps to: the
// server is shutting down and shed the query before it ran. Classify reports
// it retryable (against a restarted or different server).
var ErrServerDraining = errors.New("wire: server draining, query shed")

// RejectError is the typed error for a query the server refused to run. It
// unwraps to ErrOverloaded or ErrServerDraining so callers can match with
// errors.Is, and carries the server's retry-after hint.
type RejectError struct {
	Reason RejectReason
	// RetryAfter is the server's backoff hint; zero means "immediately".
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("wire: query rejected: server %s (retry after %s)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("wire: query rejected: server %s", e.Reason)
}

// Unwrap maps the reason onto its sentinel.
func (e *RejectError) Unwrap() error {
	if e.Reason == RejectDraining {
		return ErrServerDraining
	}
	return ErrOverloaded
}

// QueryReject is the wire form of a typed refusal (server→requester).
type QueryReject struct {
	QueryID uint64
	Reason  RejectReason
	// RetryAfterMillis is the server's resubmission backoff hint.
	RetryAfterMillis int64
}

// Err converts the frame into the typed error requesters surface.
func (q *QueryReject) Err() error {
	return &RejectError{Reason: q.Reason, RetryAfter: time.Duration(q.RetryAfterMillis) * time.Millisecond}
}

// EncodeQueryReject serialises a QueryReject.
func EncodeQueryReject(q *QueryReject) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, q.QueryID)
	dst = append(dst, byte(q.Reason))
	dst = binary.AppendUvarint(dst, uint64(q.RetryAfterMillis))
	return dst
}

// DecodeQueryReject deserialises a QueryReject.
func DecodeQueryReject(src []byte) (*QueryReject, error) {
	if len(src) < 9 {
		return nil, fmt.Errorf("wire: query reject too short")
	}
	q := &QueryReject{QueryID: binary.LittleEndian.Uint64(src), Reason: RejectReason(src[8])}
	retry, c := binary.Uvarint(src[9:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: query reject: bad retry-after")
	}
	if 9+c != len(src) {
		return nil, fmt.Errorf("wire: query reject: %d trailing bytes", len(src)-9-c)
	}
	q.RetryAfterMillis = int64(retry)
	return q, nil
}

// QuerySpec is the wire form of a service query: the common
// filter→UDF-apply→pushable-filter→project shape over one stored table, plus
// the client runtime address the UDF sessions should dial and the query's
// resource envelope. UDFs may be empty for pure server-side queries.
type QuerySpec struct {
	// QueryID identifies the query on this connection; result batches carry
	// it as their SessionID.
	QueryID uint64
	// Caps requests optional protocol features (see the Cap constants).
	Caps uint32
	// Table is the stored relation to scan, by catalog name.
	Table string
	// Filter, when non-empty, is a marshalled server-evaluable predicate over
	// the table schema.
	Filter []byte
	// UDFs are the client-site UDFs to apply; ordinals reference the table
	// schema. Result kinds and cost metadata come from the server catalog.
	UDFs []UDFSpec
	// Pushable, when non-empty, is a marshalled predicate over the extended
	// schema (table columns + one result column per UDF).
	Pushable []byte
	// Project optionally narrows the output to these extended-schema ordinals.
	Project []int
	// ClientAddr is the address of the client UDF runtime the server should
	// dial for UDF sessions. Empty is valid for UDF-free queries.
	ClientAddr string
	// MemBudget, when > 0, overrides the service's per-query spill budget in
	// bytes for this query.
	MemBudget int64
	// TimeoutMillis, when > 0, bounds the query's wall-clock time.
	TimeoutMillis int64
	// Text, when non-empty, is a textual query (see docs/QUERYLANG.md) the
	// server parses and plans; Table, Filter, UDFs, Pushable and Project are
	// then ignored. Text is encoded as an optional trailing field — specs
	// without it are byte-identical to the pre-text encoding, and decoders
	// treat a missing trailer as empty — so old requesters and old servers
	// interoperate; the feature is gated on CapTextQuery.
	Text string
	// Tenant names the accounting principal the query runs under; the
	// service's fair scheduler queues and meters per tenant. Empty means the
	// shared default tenant. Like Text it is an optional trailing field (a
	// spec with a tenant always encodes the Text field, even when empty, so
	// the trailer order is unambiguous); old servers ignore it and schedule
	// the query under the default tenant.
	Tenant string
}

// QueryAck is the server's admission answer to a MsgQuery.
type QueryAck struct {
	QueryID uint64
	OK      bool
	Error   string
	// Caps echoes the subset of the requested capabilities the server
	// supports; absent bits must not be used.
	Caps uint32
}

// Cancel aborts a running query.
type Cancel struct {
	QueryID uint64
}

// EncodeQuerySpec serialises a QuerySpec.
func EncodeQuerySpec(q *QuerySpec) ([]byte, error) {
	if q.Table == "" && q.Text == "" {
		return nil, fmt.Errorf("wire: query spec needs a table or query text")
	}
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, q.QueryID)
	dst = binary.LittleEndian.AppendUint32(dst, q.Caps)
	dst = appendString(dst, q.Table)
	dst = binary.AppendUvarint(dst, uint64(len(q.Filter)))
	dst = append(dst, q.Filter...)
	dst = binary.AppendUvarint(dst, uint64(len(q.UDFs)))
	for _, u := range q.UDFs {
		dst = appendString(dst, u.Name)
		dst = appendInts(dst, u.ArgOrdinals)
	}
	dst = binary.AppendUvarint(dst, uint64(len(q.Pushable)))
	dst = append(dst, q.Pushable...)
	dst = appendInts(dst, q.Project)
	dst = appendString(dst, q.ClientAddr)
	dst = binary.AppendUvarint(dst, uint64(q.MemBudget))
	dst = binary.AppendUvarint(dst, uint64(q.TimeoutMillis))
	if q.Text != "" || q.Tenant != "" {
		dst = appendString(dst, q.Text)
	}
	if q.Tenant != "" {
		dst = appendString(dst, q.Tenant)
	}
	return dst, nil
}

// DecodeQuerySpec deserialises a QuerySpec.
func DecodeQuerySpec(src []byte) (*QuerySpec, error) {
	if len(src) < 12 {
		return nil, fmt.Errorf("wire: query spec too short")
	}
	q := &QuerySpec{
		QueryID: binary.LittleEndian.Uint64(src),
		Caps:    binary.LittleEndian.Uint32(src[8:]),
	}
	off := 12
	table, n, err := readString(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: query spec table: %w", err)
	}
	q.Table = table
	off += n
	readBytes := func(what string) ([]byte, error) {
		ln, c := binary.Uvarint(src[off:])
		if c <= 0 || uint64(len(src)-off-c) < ln {
			return nil, fmt.Errorf("wire: query spec: bad %s length", what)
		}
		off += c
		var out []byte
		if ln > 0 {
			out = append([]byte(nil), src[off:off+int(ln)]...)
		}
		off += int(ln)
		return out, nil
	}
	if q.Filter, err = readBytes("filter"); err != nil {
		return nil, err
	}
	count, c := binary.Uvarint(src[off:])
	if c <= 0 || count > 256 {
		return nil, fmt.Errorf("wire: query spec: bad UDF count")
	}
	off += c
	for i := uint64(0); i < count; i++ {
		name, n, err := readString(src[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: query spec UDF: %w", err)
		}
		off += n
		ords, n, err := readInts(src[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: query spec UDF ordinals: %w", err)
		}
		off += n
		q.UDFs = append(q.UDFs, UDFSpec{Name: name, ArgOrdinals: ords})
	}
	if q.Pushable, err = readBytes("pushable"); err != nil {
		return nil, err
	}
	proj, n, err := readInts(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: query spec projection: %w", err)
	}
	off += n
	if len(proj) > 0 {
		q.Project = proj
	}
	addr, n, err := readString(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: query spec client addr: %w", err)
	}
	q.ClientAddr = addr
	off += n
	budget, c := binary.Uvarint(src[off:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: query spec: bad budget")
	}
	off += c
	q.MemBudget = int64(budget)
	timeout, c := binary.Uvarint(src[off:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: query spec: bad timeout")
	}
	off += c
	q.TimeoutMillis = int64(timeout)
	if off < len(src) {
		text, n, err := readString(src[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: query spec text: %w", err)
		}
		q.Text = text
		off += n
	}
	if off < len(src) {
		tenant, n, err := readString(src[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: query spec tenant: %w", err)
		}
		q.Tenant = tenant
		off += n
	}
	if off != len(src) {
		return nil, fmt.Errorf("wire: query spec: %d trailing bytes", len(src)-off)
	}
	return q, nil
}

// EncodeQueryAck serialises a QueryAck.
func EncodeQueryAck(a *QueryAck) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, a.QueryID)
	if a.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendString(dst, a.Error)
	dst = binary.LittleEndian.AppendUint32(dst, a.Caps)
	return dst
}

// DecodeQueryAck deserialises a QueryAck. Acks from older servers may lack
// the trailing capability word; every capability then reads as absent.
func DecodeQueryAck(src []byte) (*QueryAck, error) {
	if len(src) < 9 {
		return nil, fmt.Errorf("wire: query ack too short")
	}
	a := &QueryAck{QueryID: binary.LittleEndian.Uint64(src), OK: src[8] != 0}
	msg, n, err := readString(src[9:])
	if err != nil {
		return nil, err
	}
	a.Error = msg
	if len(src) >= 9+n+4 {
		a.Caps = binary.LittleEndian.Uint32(src[9+n:])
	}
	return a, nil
}

// ExecPrepared runs a previously prepared statement. Prepared statements are
// per-connection: StatementID is the QueryID the MsgPrepare's QuerySpec
// carried, and QueryID is the fresh ID this execution's result stream uses.
// The per-execution overrides mirror QuerySpec's resource envelope; zero
// values inherit the prepared spec's settings.
type ExecPrepared struct {
	// StatementID names the prepared statement on this connection.
	StatementID uint64
	// QueryID identifies this execution; result batches carry it.
	QueryID uint64
	// MemBudget, when > 0, overrides the statement's spill budget in bytes.
	MemBudget int64
	// TimeoutMillis, when > 0, bounds this execution's wall-clock time.
	TimeoutMillis int64
	// Tenant, when non-empty, overrides the statement's tenant.
	Tenant string
}

// EncodeExecPrepared serialises an ExecPrepared.
func EncodeExecPrepared(e *ExecPrepared) []byte {
	var dst []byte
	dst = binary.LittleEndian.AppendUint64(dst, e.StatementID)
	dst = binary.LittleEndian.AppendUint64(dst, e.QueryID)
	dst = binary.AppendUvarint(dst, uint64(e.MemBudget))
	dst = binary.AppendUvarint(dst, uint64(e.TimeoutMillis))
	dst = appendString(dst, e.Tenant)
	return dst
}

// DecodeExecPrepared deserialises an ExecPrepared.
func DecodeExecPrepared(src []byte) (*ExecPrepared, error) {
	if len(src) < 16 {
		return nil, fmt.Errorf("wire: exec prepared too short")
	}
	e := &ExecPrepared{
		StatementID: binary.LittleEndian.Uint64(src),
		QueryID:     binary.LittleEndian.Uint64(src[8:]),
	}
	off := 16
	budget, c := binary.Uvarint(src[off:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: exec prepared: bad budget")
	}
	off += c
	e.MemBudget = int64(budget)
	timeout, c := binary.Uvarint(src[off:])
	if c <= 0 {
		return nil, fmt.Errorf("wire: exec prepared: bad timeout")
	}
	off += c
	e.TimeoutMillis = int64(timeout)
	tenant, n, err := readString(src[off:])
	if err != nil {
		return nil, fmt.Errorf("wire: exec prepared tenant: %w", err)
	}
	e.Tenant = tenant
	off += n
	if off != len(src) {
		return nil, fmt.Errorf("wire: exec prepared: %d trailing bytes", len(src)-off)
	}
	return e, nil
}

// EncodeCancel serialises a Cancel.
func EncodeCancel(c *Cancel) []byte {
	return binary.LittleEndian.AppendUint64(nil, c.QueryID)
}

// DecodeCancel deserialises a Cancel.
func DecodeCancel(src []byte) (*Cancel, error) {
	if len(src) < 8 {
		return nil, fmt.Errorf("wire: cancel too short")
	}
	return &Cancel{QueryID: binary.LittleEndian.Uint64(src)}, nil
}
