package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// ErrPeerClosed is returned by Conn.Receive when the peer shuts the
// connection down cleanly on a frame boundary. It unwraps to io.EOF, so
// legacy callers matching io.EOF keep working, while new callers can
// distinguish an orderly shutdown from mid-frame truncation
// (io.ErrUnexpectedEOF).
var ErrPeerClosed error = &peerClosedError{}

type peerClosedError struct{}

func (*peerClosedError) Error() string { return "wire: peer closed the connection" }
func (*peerClosedError) Unwrap() error { return io.EOF }

// ErrCircuitOpen is returned by Breaker.Allow (and therefore by Redialer)
// while the circuit breaker is open after repeated link failures.
var ErrCircuitOpen = errors.New("wire: circuit breaker open")

// ErrClass buckets session errors by how the fault-tolerance layer should
// react to them.
type ErrClass uint8

const (
	// ClassFatal marks errors that redialing cannot fix: protocol
	// violations, application (UDF) failures, frame corruption. The query
	// fails.
	ClassFatal ErrClass = iota
	// ClassRetryable marks transport-level failures — connection drops,
	// resets, refused dials, truncation — worth a reconnection attempt.
	ClassRetryable
	// ClassCanceled marks errors caused by the query's own context
	// (cancellation or deadline); recovery must stop immediately.
	ClassCanceled
)

// String names the class for logs and error messages.
func (c ErrClass) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassCanceled:
		return "canceled"
	default:
		return "fatal"
	}
}

// Classify buckets an error from a session operation. Transport-shaped
// failures (EOF, closed pipes, net errors, deadline slams) are retryable;
// context errors are canceled; everything else — including peer-reported
// application errors — is fatal.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassFatal
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	if errors.Is(err, ErrCircuitOpen) {
		return ClassFatal
	}
	// Typed server refusals: the query never ran (shed under overload, or
	// shed by a draining server), so an idempotent resubmission is safe.
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrServerDraining) {
		return ClassRetryable
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) {
		return ClassRetryable
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return ClassRetryable
	}
	var oerr *net.OpError
	if errors.As(err, &oerr) {
		return ClassRetryable
	}
	return ClassFatal
}

// IsRetryable reports whether err is worth a reconnection attempt.
func IsRetryable(err error) bool { return Classify(err) == ClassRetryable }

// Backoff computes a capped exponential backoff schedule with proportional
// jitter. The zero value uses the defaults noted on each field.
type Backoff struct {
	// Base is the delay before the first retry. Default 20ms.
	Base time.Duration
	// Max caps the delay. Default 2s.
	Max time.Duration
	// Factor multiplies the delay each attempt. Default 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the returned
	// delay is uniform in [d·(1−Jitter), d]. Default 0.2; negative disables.
	Jitter float64
	// Rand supplies the jitter draw in [0,1); nil uses math/rand. Tests
	// inject a deterministic source here.
	Rand func() float64
}

// Delay returns the backoff before retry attempt n (0-based: n=0 is the
// delay after the first failure).
func (b Backoff) Delay(n int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < n; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		draw := b.Rand
		if draw == nil {
			draw = rand.Float64
		}
		d -= d * jitter * draw()
	}
	return time.Duration(d)
}

// Breaker is a per-link circuit breaker: after Threshold consecutive
// failures it opens for Cooldown, during which Allow fails fast with
// ErrCircuitOpen. After the cooldown one trial is allowed through
// (half-open); success closes the circuit, failure re-opens it.
type Breaker struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit. Default 5.
	Threshold int
	// Cooldown is how long the circuit stays open. Default 3s.
	Cooldown time.Duration
	// Now supplies the clock; nil uses time.Now. Tests inject a fake.
	Now func() time.Time

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	trips     int64
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// Allow reports whether an attempt may proceed; it returns ErrCircuitOpen
// while the circuit is open.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openUntil.IsZero() && b.now().Before(b.openUntil) {
		return fmt.Errorf("%w (until %s)", ErrCircuitOpen, b.openUntil.Format(time.RFC3339))
	}
	// Half-open: clear the window so one trial proceeds; Failure re-opens.
	b.openUntil = time.Time{}
	return nil
}

// Success records a successful attempt, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
}

// Failure records a failed attempt, opening the circuit once the
// consecutive-failure threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = 5
	}
	if b.fails >= threshold {
		cooldown := b.Cooldown
		if cooldown <= 0 {
			cooldown = 3 * time.Second
		}
		b.openUntil = b.now().Add(cooldown)
		b.trips++
	}
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Redialer re-establishes a session with capped exponential backoff and
// jittered delays, giving up early on fatal or context errors and honouring
// an optional per-link circuit breaker.
type Redialer[T any] struct {
	// Dial performs one connection + handshake attempt.
	Dial func(ctx context.Context) (T, error)
	// MaxAttempts bounds the attempts per Redial call. Default 4.
	MaxAttempts int
	// Backoff schedules the delay between attempts.
	Backoff Backoff
	// Breaker, when non-nil, gates attempts and records their outcomes.
	Breaker *Breaker
	// Sleep waits between attempts; nil uses a context-aware real sleep.
	// Tests inject a fake clock here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// SleepCtx sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case. It is the default Sleep of a Redialer.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Redial attempts to establish a session until one attempt succeeds, the
// attempt budget is exhausted, the breaker opens, or a fatal or context
// error surfaces.
func (r *Redialer[T]) Redial(ctx context.Context) (T, error) {
	var zero T
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = SleepCtx
	}
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if i > 0 {
			if err := sleep(ctx, r.Backoff.Delay(i-1)); err != nil {
				return zero, err
			}
		}
		if r.Breaker != nil {
			if err := r.Breaker.Allow(); err != nil {
				if last != nil {
					return zero, fmt.Errorf("%w (last dial error: %v)", err, last)
				}
				return zero, err
			}
		}
		v, err := r.Dial(ctx)
		if err == nil {
			if r.Breaker != nil {
				r.Breaker.Success()
			}
			return v, nil
		}
		if r.Breaker != nil {
			r.Breaker.Failure()
		}
		switch Classify(err) {
		case ClassCanceled:
			return zero, err
		case ClassFatal:
			return zero, fmt.Errorf("wire: redial aborted on fatal error: %w", err)
		}
		last = err
	}
	return zero, fmt.Errorf("wire: redial gave up after %d attempts: %w", attempts, last)
}
