package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestBackoffJitterRange(t *testing.T) {
	base := 100 * time.Millisecond
	full := Backoff{Base: base, Jitter: 0.5, Rand: func() float64 { return 1 }}
	if got := full.Delay(0); got != base/2 {
		t.Errorf("full jitter draw: Delay(0) = %v, want %v", got, base/2)
	}
	none := Backoff{Base: base, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if got := none.Delay(0); got != base {
		t.Errorf("zero jitter draw: Delay(0) = %v, want %v", got, base)
	}
}

// fakeSleeper records every requested delay without sleeping, so backoff
// schedules are asserted exactly and the test takes microseconds.
type fakeSleeper struct{ slept []time.Duration }

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return ctx.Err()
}

func TestRedialerBackoffScheduleWithFakeClock(t *testing.T) {
	clock := &fakeSleeper{}
	attempts := 0
	r := Redialer[int]{
		Dial: func(ctx context.Context) (int, error) {
			attempts++
			if attempts < 4 {
				return 0, fmt.Errorf("transport: %w", io.ErrClosedPipe)
			}
			return 7, nil
		},
		MaxAttempts: 6,
		Backoff:     Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Factor: 2, Jitter: -1},
		Sleep:       clock.sleep,
	}
	start := time.Now()
	v, err := r.Redial(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("Redial = (%d, %v), want (7, nil)", v, err)
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i, w := range want {
		if clock.slept[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, clock.slept[i], w)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("fake-clock redial took %v of real time", elapsed)
	}
}

func TestRedialerGivesUpAfterBudget(t *testing.T) {
	clock := &fakeSleeper{}
	attempts := 0
	r := Redialer[int]{
		Dial: func(ctx context.Context) (int, error) {
			attempts++
			return 0, io.ErrClosedPipe
		},
		MaxAttempts: 3,
		Sleep:       clock.sleep,
	}
	if _, err := r.Redial(context.Background()); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("Redial error = %v, want wrapped last dial error", err)
	}
	if attempts != 3 || len(clock.slept) != 2 {
		t.Errorf("attempts = %d, sleeps = %d; want 3 attempts and 2 sleeps", attempts, len(clock.slept))
	}
}

func TestRedialerStopsOnFatalError(t *testing.T) {
	attempts := 0
	appErr := errors.New("client rejected setup")
	r := Redialer[int]{
		Dial:  func(ctx context.Context) (int, error) { attempts++; return 0, appErr },
		Sleep: (&fakeSleeper{}).sleep,
	}
	if _, err := r.Redial(context.Background()); !errors.Is(err, appErr) {
		t.Fatalf("Redial error = %v, want wrapped fatal error", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (fatal errors must not be retried)", attempts)
	}
}

func TestRedialerHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Redialer[int]{
		Dial:  func(ctx context.Context) (int, error) { return 0, io.ErrClosedPipe },
		Sleep: (&fakeSleeper{}).sleep,
	}
	if _, err := r.Redial(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Redial on a cancelled context = %v, want context.Canceled", err)
	}
}

func TestRedialerBreakerFailsFast(t *testing.T) {
	now := time.Unix(0, 0)
	br := &Breaker{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }}
	r := Redialer[int]{
		Dial:        func(ctx context.Context) (int, error) { return 0, io.ErrClosedPipe },
		MaxAttempts: 10,
		Breaker:     br,
		Sleep:       (&fakeSleeper{}).sleep,
	}
	if _, err := r.Redial(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Redial with tripping breaker = %v, want ErrCircuitOpen", err)
	}
	if br.Trips() == 0 {
		t.Error("breaker never tripped")
	}
	if Classify(ErrCircuitOpen) != ClassFatal {
		t.Error("an open circuit must classify fatal: retrying through it defeats its purpose")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	br := &Breaker{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }}
	br.Failure()
	if err := br.Allow(); err != nil {
		t.Fatalf("Allow below threshold = %v", err)
	}
	br.Failure()
	if err := br.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow after threshold = %v, want ErrCircuitOpen", err)
	}
	now = now.Add(2 * time.Minute)
	if err := br.Allow(); err != nil {
		t.Fatalf("Allow after cooldown (half-open) = %v, want nil", err)
	}
	br.Success()
	br.Failure() // one failure after a success must not re-open
	if err := br.Allow(); err != nil {
		t.Fatalf("Allow after success reset = %v, want nil", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ClassFatal},
		{"application", errors.New("UDF failed"), ClassFatal},
		{"circuit open", ErrCircuitOpen, ClassFatal},
		{"canceled", context.Canceled, ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassCanceled},
		{"wrapped canceled", fmt.Errorf("query: %w", context.Canceled), ClassCanceled},
		{"eof", io.EOF, ClassRetryable},
		{"peer closed", ErrPeerClosed, ClassRetryable},
		{"truncation", io.ErrUnexpectedEOF, ClassRetryable},
		{"closed pipe", io.ErrClosedPipe, ClassRetryable},
		{"net closed", net.ErrClosed, ClassRetryable},
		{"wrapped transport", fmt.Errorf("send frame: %w", io.ErrClosedPipe), ClassRetryable},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestErrPeerClosedOnCleanShutdown(t *testing.T) {
	if !errors.Is(ErrPeerClosed, io.EOF) {
		t.Fatal("ErrPeerClosed must unwrap to io.EOF for legacy callers")
	}
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		_, err := cb.Receive()
		done <- err
	}()
	_ = ca.Close()
	err := <-done
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("Receive after clean peer close = %v, want ErrPeerClosed", err)
	}
	_ = cb.Close()
}
