package wire

import (
	"errors"
	"testing"
	"time"
)

func TestQueryRejectRoundTrip(t *testing.T) {
	cases := []QueryReject{
		{QueryID: 1, Reason: RejectOverloaded, RetryAfterMillis: 250},
		{QueryID: 1<<63 + 9, Reason: RejectDraining, RetryAfterMillis: 0},
		{QueryID: 0, Reason: RejectOverloaded, RetryAfterMillis: 1 << 40},
	}
	for _, c := range cases {
		got, err := DecodeQueryReject(EncodeQueryReject(&c))
		if err != nil {
			t.Fatalf("decode(%+v): %v", c, err)
		}
		if *got != c {
			t.Fatalf("round trip: got %+v, want %+v", *got, c)
		}
	}
}

func TestQueryRejectDecodeRejectsJunk(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		make([]byte, 8), // too short: no reason byte
		append(EncodeQueryReject(&QueryReject{QueryID: 3}), 0xFF), // trailing bytes
	} {
		if _, err := DecodeQueryReject(bad); err == nil {
			t.Fatalf("decode accepted junk payload of %d bytes", len(bad))
		}
	}
}

func TestRejectErrorTypedAndRetryable(t *testing.T) {
	over := (&QueryReject{QueryID: 5, Reason: RejectOverloaded, RetryAfterMillis: 40}).Err()
	if !errors.Is(over, ErrOverloaded) {
		t.Fatalf("overload reject does not unwrap to ErrOverloaded: %v", over)
	}
	var re *RejectError
	if !errors.As(over, &re) || re.RetryAfter != 40*time.Millisecond {
		t.Fatalf("overload reject lost its retry-after: %v", over)
	}
	if Classify(over) != ClassRetryable {
		t.Fatalf("overload reject classified %v, want retryable", Classify(over))
	}

	drain := (&QueryReject{QueryID: 5, Reason: RejectDraining}).Err()
	if !errors.Is(drain, ErrServerDraining) {
		t.Fatalf("draining reject does not unwrap to ErrServerDraining: %v", drain)
	}
	if Classify(drain) != ClassRetryable {
		t.Fatalf("draining reject classified %v, want retryable", Classify(drain))
	}

	if MsgQueryReject.String() != "QUERY_REJECT" {
		t.Fatalf("MsgQueryReject.String() = %q", MsgQueryReject.String())
	}
	if RejectOverloaded.String() != "overloaded" || RejectDraining.String() != "draining" {
		t.Fatalf("reason strings: %q / %q", RejectOverloaded, RejectDraining)
	}
}
