// Package wire implements the framed binary protocol spoken between the
// server's client-site UDF operators and the client runtime.
//
// Every message is a frame: a 4-byte little-endian payload length, a 1-byte
// message type, and the payload. Payloads are encoded with the same
// deterministic binary encoding the rest of the system uses (package types),
// so the byte counts observed on the link line up with the cost model's
// predictions.
//
// A session is established with a SetupRequest describing the execution mode
// (naive, semi-join, or client-site join), the schema of the tuples that will
// be shipped, the UDFs to apply, and any pushable predicate / projection to
// run at the client. Tuples then flow down in TupleBatch messages and results
// flow back in ResultBatch messages, terminated by End messages in both
// directions.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/types"
)

// MsgType identifies the kind of a frame.
type MsgType uint8

// Message types.
const (
	MsgInvalid MsgType = iota
	// MsgSetup carries a SetupRequest from server to client.
	MsgSetup
	// MsgSetupAck acknowledges a SetupRequest (client to server).
	MsgSetupAck
	// MsgTupleBatch carries argument tuples or full records server→client.
	MsgTupleBatch
	// MsgResultBatch carries UDF results (or filtered records) client→server.
	MsgResultBatch
	// MsgEnd signals the end of a tuple stream in either direction.
	MsgEnd
	// MsgError carries an error description in either direction.
	MsgError
	// MsgRegisterUDF announces a client-registered UDF (client→server).
	MsgRegisterUDF
	// MsgFinalResult carries final query results destined for the client's
	// result consumer (server→client), used when the final result operator is
	// merged with a client-site UDF group.
	MsgFinalResult
	// MsgProbe carries an opaque padding payload in either direction; the
	// client answers a probe with a probe whose payload has the size the server
	// requested. The planner uses probe pairs of different sizes to measure the
	// live bandwidth of each link direction and hence the network asymmetry N,
	// without relying on configured values.
	MsgProbe
	// MsgTupleBatchDict is a TupleBatch (server→client) in the per-batch value
	// dictionary encoding: each distinct column value is encoded once and rows
	// reference it by index. Only sent on sessions that negotiated
	// DictBatches in the setup handshake.
	MsgTupleBatchDict
	// MsgResultBatchDict is a ResultBatch (client→server) in the dictionary
	// encoding, under the same negotiation.
	MsgResultBatchDict
	// MsgQuery submits a query to the query service (requester→server). The
	// payload is a QuerySpec; the spec's Caps field requests optional protocol
	// features (capability-negotiated like the dict-batch flag: the server
	// echoes the subset it supports in the MsgQueryAck, and the requester only
	// uses a feature the ack confirmed, so old peers keep working).
	MsgQuery
	// MsgQueryAck answers a MsgQuery (server→requester) with admission status
	// and the supported capability subset. Result rows then stream back as
	// MsgResultBatch frames whose SessionID is the query ID, terminated by a
	// MsgEnd carrying the row count (or a MsgError).
	MsgQueryAck
	// MsgCancel aborts a running query (requester→server). Only sent when the
	// server's MsgQueryAck confirmed CapCancel.
	MsgCancel
	// MsgQueryReject terminates a query's result stream with a typed refusal
	// (server→requester): the server shed the query under overload or is
	// draining for shutdown. The payload carries the reason and a retry-after
	// hint, so a requester can distinguish a retryable shed from a fatal error
	// and resubmit. Only sent when the server's MsgQueryAck confirmed
	// CapReject; older requesters receive a MsgError instead.
	MsgQueryReject
	// MsgPrepare registers a prepared statement (requester→server): the
	// payload is a QuerySpec whose QueryID becomes the statement ID on this
	// connection. The server parses, rewrites and plans it once; later
	// MsgExecPrepared frames re-run the cached plan. Only sent when the
	// server's MsgQueryAck (of any prior query) or MsgPrepareAck confirmed
	// CapPrepared.
	MsgPrepare
	// MsgPrepareAck answers a MsgPrepare (server→requester) with the
	// statement's validity and the supported capability subset. It reuses the
	// QueryAck payload encoding with QueryID = statement ID.
	MsgPrepareAck
	// MsgExecPrepared executes a prepared statement (requester→server). The
	// payload names the statement ID plus a fresh per-execution QueryID;
	// results stream back exactly as for MsgQuery.
	MsgExecPrepared
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgSetup:
		return "SETUP"
	case MsgSetupAck:
		return "SETUP_ACK"
	case MsgTupleBatch:
		return "TUPLE_BATCH"
	case MsgResultBatch:
		return "RESULT_BATCH"
	case MsgEnd:
		return "END"
	case MsgError:
		return "ERROR"
	case MsgRegisterUDF:
		return "REGISTER_UDF"
	case MsgFinalResult:
		return "FINAL_RESULT"
	case MsgProbe:
		return "PROBE"
	case MsgTupleBatchDict:
		return "TUPLE_BATCH_DICT"
	case MsgResultBatchDict:
		return "RESULT_BATCH_DICT"
	case MsgQuery:
		return "QUERY"
	case MsgQueryAck:
		return "QUERY_ACK"
	case MsgCancel:
		return "CANCEL"
	case MsgQueryReject:
		return "QUERY_REJECT"
	case MsgPrepare:
		return "PREPARE"
	case MsgPrepareAck:
		return "PREPARE_ACK"
	case MsgExecPrepared:
		return "EXEC_PREPARED"
	default:
		return "INVALID"
	}
}

// MaxFrameSize bounds a single frame's payload; larger frames are rejected to
// protect both ends from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Message is one decoded frame.
type Message struct {
	Type    MsgType
	Payload []byte
}

// Conn frames messages over an underlying reader/writer. Writes are
// serialised with a mutex so that concurrent sender goroutines (the semi-join
// sender and the naive operator's control path) can share one connection.
type Conn struct {
	wmu sync.Mutex
	w   *bufio.Writer
	rmu sync.Mutex
	r   *bufio.Reader
	rw  io.ReadWriteCloser

	ctxMu sync.Mutex
	ctx   context.Context // bound query context, when any

	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	sendNs   atomic.Int64
	recvNs   atomic.Int64
}

// connDeadliner is the deadline surface of net.Conn; every transport the
// engine uses (TCP, net.Pipe-based netsim pairs) provides it.
type connDeadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// BindContext ties the connection's blocking I/O to a query context: the
// context's deadline becomes the read/write deadline of the underlying
// transport, and cancellation aborts any in-flight or future Send/Receive
// promptly (by slamming the deadlines shut, or closing transports without
// deadline support). Send and Receive then surface ctx.Err() — so a dead or
// stalled peer can wedge an operator for at most the query's deadline, and an
// explicit cancel unwedges it immediately.
//
// The returned release function detaches the context and clears the
// deadlines; call it when the query is done if the connection outlives it.
// One context is bound at a time; binding replaces any previous binding.
func (c *Conn) BindContext(ctx context.Context) (release func()) {
	if ctx == nil {
		return func() {}
	}
	c.ctxMu.Lock()
	c.ctx = ctx
	c.ctxMu.Unlock()
	dl, _ := c.rw.(connDeadliner)
	if dl != nil {
		if d, ok := ctx.Deadline(); ok {
			_ = dl.SetReadDeadline(d)
			_ = dl.SetWriteDeadline(d)
		}
	}
	stop := context.AfterFunc(ctx, func() {
		if dl != nil {
			past := time.Unix(1, 0)
			_ = dl.SetReadDeadline(past)
			_ = dl.SetWriteDeadline(past)
		} else {
			// No deadline support: closing is the only way to unblock I/O.
			_ = c.rw.Close()
		}
	})
	return func() {
		stop()
		c.ctxMu.Lock()
		expired := c.ctx != nil && c.ctx.Err() != nil
		c.ctx = nil
		c.ctxMu.Unlock()
		if dl != nil && !expired {
			_ = dl.SetReadDeadline(time.Time{})
			_ = dl.SetWriteDeadline(time.Time{})
		}
	}
}

// NewConn wraps a duplex byte stream in a framed message connection.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		w:  bufio.NewWriterSize(rw, 32*1024),
		r:  bufio.NewReaderSize(rw, 32*1024),
		rw: rw,
	}
}

// Send writes one frame and flushes it. The time spent blocked in the write
// path (which, over a shaped or real link, is dominated by the downlink
// transfer) is accumulated into the connection's send-time counter.
func (c *Conn) Send(t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	start := time.Now()
	defer func() { c.sendNs.Add(int64(time.Since(start))) }()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := c.w.Write(hdr[:]); err != nil {
		return c.ioError("write header", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return c.ioError("write payload", err)
	}
	c.bytesOut.Add(int64(len(hdr) + len(payload)))
	if err := c.w.Flush(); err != nil {
		return c.ioError("flush", err)
	}
	return nil
}

// ioError folds a bound, finished query context into an I/O failure: a read
// or write that broke because the context's deadline slammed the transport
// shut surfaces as the context error (context.Canceled or DeadlineExceeded),
// which is what the operator layers and the service report.
func (c *Conn) ioError(op string, err error) error {
	if cerr := c.ctxIOErr(err); cerr != nil {
		return fmt.Errorf("wire: %s: %w", op, cerr)
	}
	return fmt.Errorf("wire: %s: %w", op, err)
}

// ctxIOErr attributes an I/O failure to the bound context, if one explains
// it. A transport deadline error while a context is bound is the context's
// doing (its deadline is where the transport deadline came from), but the
// wall clocks can disagree by nanoseconds — the transport may time out just
// before ctx.Err() flips — so a deadline error briefly waits for the context
// to catch up before falling back to the raw error.
func (c *Conn) ctxIOErr(err error) error {
	c.ctxMu.Lock()
	ctx := c.ctx
	c.ctxMu.Unlock()
	if ctx == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
		}
	}
	return nil
}

// Receive reads one frame. The time spent blocked waiting for the frame
// (uplink transfer plus however long the peer took to produce it) is
// accumulated into the connection's receive-time counter.
func (c *Conn) Receive() (Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	start := time.Now()
	defer func() { c.recvNs.Add(int64(time.Since(start))) }()
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if cerr := c.ctxIOErr(err); cerr != nil {
			return Message{}, fmt.Errorf("wire: read header: %w", cerr)
		}
		if err == io.EOF {
			// EOF on a frame boundary is a clean peer shutdown; EOF inside a
			// header or payload stays io.ErrUnexpectedEOF (truncation).
			return Message{}, ErrPeerClosed
		}
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return Message{}, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return Message{}, c.ioError("read payload", err)
	}
	c.bytesIn.Add(int64(len(hdr)) + int64(n))
	return Message{Type: MsgType(hdr[4]), Payload: payload}, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// BytesSent returns the total framed bytes written so far. It never blocks,
// even while another goroutine is in Send or Receive.
func (c *Conn) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived returns the total framed bytes read so far. It never blocks,
// even while another goroutine is in Send or Receive.
func (c *Conn) BytesReceived() int64 { return c.bytesIn.Load() }

// SendTime returns the cumulative wall-clock time spent inside Send. Over a
// bandwidth-shaped link this is effectively the downlink busy time, which is
// what the planner's link probe divides shipped bytes by.
func (c *Conn) SendTime() time.Duration { return time.Duration(c.sendNs.Load()) }

// ReceiveTime returns the cumulative wall-clock time spent blocked inside
// Receive (uplink transfer plus peer latency).
func (c *Conn) ReceiveTime() time.Duration { return time.Duration(c.recvNs.Load()) }

// Probe is an opaque padding message used to measure live link bandwidth. The
// receiver of a probe with EchoBytes > 0 answers with a probe whose payload is
// EchoBytes long (and whose own EchoBytes is zero, terminating the exchange).
type Probe struct {
	// Seq matches an echo to the probe that requested it.
	Seq uint32
	// EchoBytes is the payload size the peer should answer with.
	EchoBytes uint32
	// Payload is opaque padding sized by the prober.
	Payload []byte
}

// Mode selects the client-side execution strategy for a session.
type Mode uint8

// Execution modes, mirroring the three strategies of the paper.
const (
	// ModeNaive ships one argument tuple per round trip (tuple-at-a-time).
	ModeNaive Mode = iota
	// ModeSemiJoin ships duplicate-free argument columns and receives bare
	// results.
	ModeSemiJoin
	// ModeClientJoin ships full records and receives filtered, projected
	// records with the UDF results appended.
	ModeClientJoin
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeSemiJoin:
		return "semijoin"
	case ModeClientJoin:
		return "clientjoin"
	default:
		return "unknown"
	}
}

// UDFSpec names one UDF to apply at the client and the ordinals (within the
// shipped tuple) of its arguments.
type UDFSpec struct {
	Name        string
	ArgOrdinals []int
}

// SetupRequest configures a client-side execution session.
type SetupRequest struct {
	// SessionID identifies the session; batches carry it so that one
	// connection can multiplex sessions.
	SessionID uint64
	// Mode is the execution strategy.
	Mode Mode
	// InputSchema describes the tuples shipped to the client.
	InputSchema *types.Schema
	// UDFs are applied in order; each result is appended to the shipped tuple
	// (client-site join) or returned bare (semi-join).
	UDFs []UDFSpec
	// PushablePredicate, when non-empty, is a marshalled expression evaluated
	// at the client over the shipped tuple extended with the UDF results;
	// tuples failing it are dropped before anything is returned.
	PushablePredicate []byte
	// ProjectOrdinals, when non-empty, lists the ordinals (into the shipped
	// tuple extended with UDF results) returned to the server. Empty means
	// return everything (semi-join returns only results regardless).
	ProjectOrdinals []int
	// FinalDelivery indicates the results are for the end user at the client
	// (the plan merged the UDF with the final result operator), so nothing
	// needs to be returned to the server except a row count.
	FinalDelivery bool
	// DictBatches requests the per-batch value dictionary encoding for this
	// session's tuple traffic (both directions). It is carried as a flag bit
	// that pre-dictionary clients ignore; the encoding is only used once the
	// client echoes acceptance in its SetupAck, so old peers keep working on
	// plain batches.
	DictBatches bool
}

// SetupAck is the client's answer to a SetupRequest.
type SetupAck struct {
	SessionID uint64
	OK        bool
	Error     string
	// DictBatches confirms the dictionary-encoding request of the setup. It
	// is encoded as a trailing capability byte that pre-dictionary servers
	// ignore; its absence reads as false, disabling the encoding.
	DictBatches bool
}

// TupleBatch is a batch of shipped tuples (downlink) or returned tuples
// (uplink).
type TupleBatch struct {
	SessionID uint64
	Seq       uint64
	Tuples    []types.Tuple
}

// ErrorMsg carries an error across the wire.
type ErrorMsg struct {
	SessionID uint64
	Message   string
}

// RegisterUDF announces a UDF implemented at the client.
type RegisterUDF struct {
	Name        string
	ArgKinds    []types.Kind
	ResultKind  types.Kind
	ResultSize  int
	Selectivity float64
	PerCallCost float64
	// Pure declares the function deterministic and side-effect free, making
	// queries over it eligible for server-side result caching. It is encoded
	// as an optional trailing byte that pre-purity servers ignore; its absence
	// reads as false (never cache), so old peers stay correct.
	Pure bool
}

// End signals the end of a stream for a session.
type End struct {
	SessionID uint64
	// Rows is the number of tuples delivered in total (used by FinalDelivery
	// sessions to report the result cardinality back to the server).
	Rows uint64
}
