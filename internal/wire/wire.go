// Package wire implements the framed binary protocol spoken between the
// server's client-site UDF operators and the client runtime.
//
// Every message is a frame: a 4-byte little-endian payload length, a 1-byte
// message type, and the payload. Payloads are encoded with the same
// deterministic binary encoding the rest of the system uses (package types),
// so the byte counts observed on the link line up with the cost model's
// predictions.
//
// A session is established with a SetupRequest describing the execution mode
// (naive, semi-join, or client-site join), the schema of the tuples that will
// be shipped, the UDFs to apply, and any pushable predicate / projection to
// run at the client. Tuples then flow down in TupleBatch messages and results
// flow back in ResultBatch messages, terminated by End messages in both
// directions.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"csq/internal/types"
)

// MsgType identifies the kind of a frame.
type MsgType uint8

// Message types.
const (
	MsgInvalid MsgType = iota
	// MsgSetup carries a SetupRequest from server to client.
	MsgSetup
	// MsgSetupAck acknowledges a SetupRequest (client to server).
	MsgSetupAck
	// MsgTupleBatch carries argument tuples or full records server→client.
	MsgTupleBatch
	// MsgResultBatch carries UDF results (or filtered records) client→server.
	MsgResultBatch
	// MsgEnd signals the end of a tuple stream in either direction.
	MsgEnd
	// MsgError carries an error description in either direction.
	MsgError
	// MsgRegisterUDF announces a client-registered UDF (client→server).
	MsgRegisterUDF
	// MsgFinalResult carries final query results destined for the client's
	// result consumer (server→client), used when the final result operator is
	// merged with a client-site UDF group.
	MsgFinalResult
	// MsgProbe carries an opaque padding payload in either direction; the
	// client answers a probe with a probe whose payload has the size the server
	// requested. The planner uses probe pairs of different sizes to measure the
	// live bandwidth of each link direction and hence the network asymmetry N,
	// without relying on configured values.
	MsgProbe
	// MsgTupleBatchDict is a TupleBatch (server→client) in the per-batch value
	// dictionary encoding: each distinct column value is encoded once and rows
	// reference it by index. Only sent on sessions that negotiated
	// DictBatches in the setup handshake.
	MsgTupleBatchDict
	// MsgResultBatchDict is a ResultBatch (client→server) in the dictionary
	// encoding, under the same negotiation.
	MsgResultBatchDict
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgSetup:
		return "SETUP"
	case MsgSetupAck:
		return "SETUP_ACK"
	case MsgTupleBatch:
		return "TUPLE_BATCH"
	case MsgResultBatch:
		return "RESULT_BATCH"
	case MsgEnd:
		return "END"
	case MsgError:
		return "ERROR"
	case MsgRegisterUDF:
		return "REGISTER_UDF"
	case MsgFinalResult:
		return "FINAL_RESULT"
	case MsgProbe:
		return "PROBE"
	case MsgTupleBatchDict:
		return "TUPLE_BATCH_DICT"
	case MsgResultBatchDict:
		return "RESULT_BATCH_DICT"
	default:
		return "INVALID"
	}
}

// MaxFrameSize bounds a single frame's payload; larger frames are rejected to
// protect both ends from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// Message is one decoded frame.
type Message struct {
	Type    MsgType
	Payload []byte
}

// Conn frames messages over an underlying reader/writer. Writes are
// serialised with a mutex so that concurrent sender goroutines (the semi-join
// sender and the naive operator's control path) can share one connection.
type Conn struct {
	wmu sync.Mutex
	w   *bufio.Writer
	rmu sync.Mutex
	r   *bufio.Reader
	rw  io.ReadWriteCloser

	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	sendNs   atomic.Int64
	recvNs   atomic.Int64
}

// NewConn wraps a duplex byte stream in a framed message connection.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		w:  bufio.NewWriterSize(rw, 32*1024),
		r:  bufio.NewReaderSize(rw, 32*1024),
		rw: rw,
	}
}

// Send writes one frame and flushes it. The time spent blocked in the write
// path (which, over a shaped or real link, is dominated by the downlink
// transfer) is accumulated into the connection's send-time counter.
func (c *Conn) Send(t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	start := time.Now()
	defer func() { c.sendNs.Add(int64(time.Since(start))) }()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	c.bytesOut.Add(int64(len(hdr) + len(payload)))
	return c.w.Flush()
}

// Receive reads one frame. The time spent blocked waiting for the frame
// (uplink transfer plus however long the peer took to produce it) is
// accumulated into the connection's receive-time counter.
func (c *Conn) Receive() (Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	start := time.Now()
	defer func() { c.recvNs.Add(int64(time.Since(start))) }()
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return Message{}, fmt.Errorf("wire: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return Message{}, fmt.Errorf("wire: read payload: %w", err)
	}
	c.bytesIn.Add(int64(len(hdr)) + int64(n))
	return Message{Type: MsgType(hdr[4]), Payload: payload}, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// BytesSent returns the total framed bytes written so far. It never blocks,
// even while another goroutine is in Send or Receive.
func (c *Conn) BytesSent() int64 { return c.bytesOut.Load() }

// BytesReceived returns the total framed bytes read so far. It never blocks,
// even while another goroutine is in Send or Receive.
func (c *Conn) BytesReceived() int64 { return c.bytesIn.Load() }

// SendTime returns the cumulative wall-clock time spent inside Send. Over a
// bandwidth-shaped link this is effectively the downlink busy time, which is
// what the planner's link probe divides shipped bytes by.
func (c *Conn) SendTime() time.Duration { return time.Duration(c.sendNs.Load()) }

// ReceiveTime returns the cumulative wall-clock time spent blocked inside
// Receive (uplink transfer plus peer latency).
func (c *Conn) ReceiveTime() time.Duration { return time.Duration(c.recvNs.Load()) }

// Probe is an opaque padding message used to measure live link bandwidth. The
// receiver of a probe with EchoBytes > 0 answers with a probe whose payload is
// EchoBytes long (and whose own EchoBytes is zero, terminating the exchange).
type Probe struct {
	// Seq matches an echo to the probe that requested it.
	Seq uint32
	// EchoBytes is the payload size the peer should answer with.
	EchoBytes uint32
	// Payload is opaque padding sized by the prober.
	Payload []byte
}

// Mode selects the client-side execution strategy for a session.
type Mode uint8

// Execution modes, mirroring the three strategies of the paper.
const (
	// ModeNaive ships one argument tuple per round trip (tuple-at-a-time).
	ModeNaive Mode = iota
	// ModeSemiJoin ships duplicate-free argument columns and receives bare
	// results.
	ModeSemiJoin
	// ModeClientJoin ships full records and receives filtered, projected
	// records with the UDF results appended.
	ModeClientJoin
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeSemiJoin:
		return "semijoin"
	case ModeClientJoin:
		return "clientjoin"
	default:
		return "unknown"
	}
}

// UDFSpec names one UDF to apply at the client and the ordinals (within the
// shipped tuple) of its arguments.
type UDFSpec struct {
	Name        string
	ArgOrdinals []int
}

// SetupRequest configures a client-side execution session.
type SetupRequest struct {
	// SessionID identifies the session; batches carry it so that one
	// connection can multiplex sessions.
	SessionID uint64
	// Mode is the execution strategy.
	Mode Mode
	// InputSchema describes the tuples shipped to the client.
	InputSchema *types.Schema
	// UDFs are applied in order; each result is appended to the shipped tuple
	// (client-site join) or returned bare (semi-join).
	UDFs []UDFSpec
	// PushablePredicate, when non-empty, is a marshalled expression evaluated
	// at the client over the shipped tuple extended with the UDF results;
	// tuples failing it are dropped before anything is returned.
	PushablePredicate []byte
	// ProjectOrdinals, when non-empty, lists the ordinals (into the shipped
	// tuple extended with UDF results) returned to the server. Empty means
	// return everything (semi-join returns only results regardless).
	ProjectOrdinals []int
	// FinalDelivery indicates the results are for the end user at the client
	// (the plan merged the UDF with the final result operator), so nothing
	// needs to be returned to the server except a row count.
	FinalDelivery bool
	// DictBatches requests the per-batch value dictionary encoding for this
	// session's tuple traffic (both directions). It is carried as a flag bit
	// that pre-dictionary clients ignore; the encoding is only used once the
	// client echoes acceptance in its SetupAck, so old peers keep working on
	// plain batches.
	DictBatches bool
}

// SetupAck is the client's answer to a SetupRequest.
type SetupAck struct {
	SessionID uint64
	OK        bool
	Error     string
	// DictBatches confirms the dictionary-encoding request of the setup. It
	// is encoded as a trailing capability byte that pre-dictionary servers
	// ignore; its absence reads as false, disabling the encoding.
	DictBatches bool
}

// TupleBatch is a batch of shipped tuples (downlink) or returned tuples
// (uplink).
type TupleBatch struct {
	SessionID uint64
	Seq       uint64
	Tuples    []types.Tuple
}

// ErrorMsg carries an error across the wire.
type ErrorMsg struct {
	SessionID uint64
	Message   string
}

// RegisterUDF announces a UDF implemented at the client.
type RegisterUDF struct {
	Name        string
	ArgKinds    []types.Kind
	ResultKind  types.Kind
	ResultSize  int
	Selectivity float64
	PerCallCost float64
}

// End signals the end of a stream for a session.
type End struct {
	SessionID uint64
	// Rows is the number of tuples delivered in total (used by FinalDelivery
	// sessions to report the result cardinality back to the server).
	Rows uint64
}
