package wire

import (
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"csq/internal/types"
)

func shippedSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Qualifier: "S", Name: "Quotes", Kind: types.KindTimeSeries},
		types.Column{Qualifier: "S", Name: "Name", Kind: types.KindString},
	)
}

func TestConnSendReceive(t *testing.T) {
	a, b := net.Pipe()
	server, client := NewConn(a), NewConn(b)
	defer server.Close()
	defer client.Close()

	go func() {
		_ = server.Send(MsgSetup, []byte("payload-1"))
		_ = server.Send(MsgEnd, nil)
	}()
	m1, err := client.Receive()
	if err != nil {
		t.Fatalf("receive 1: %v", err)
	}
	if m1.Type != MsgSetup || string(m1.Payload) != "payload-1" {
		t.Errorf("m1 = %v %q", m1.Type, m1.Payload)
	}
	m2, err := client.Receive()
	if err != nil {
		t.Fatalf("receive 2: %v", err)
	}
	if m2.Type != MsgEnd || len(m2.Payload) != 0 {
		t.Errorf("m2 = %v %q", m2.Type, m2.Payload)
	}
	if client.BytesReceived() == 0 {
		t.Error("BytesReceived should be positive")
	}
	if server.BytesSent() != client.BytesReceived() {
		t.Errorf("sent %d != received %d", server.BytesSent(), client.BytesReceived())
	}
}

func TestConnOversizeFrame(t *testing.T) {
	a, _ := net.Pipe()
	c := NewConn(a)
	defer c.Close()
	big := make([]byte, MaxFrameSize+1)
	if err := c.Send(MsgTupleBatch, big); err == nil {
		t.Error("oversize frame should be rejected")
	}
}

func TestConnReceiveAfterClose(t *testing.T) {
	a, b := net.Pipe()
	server, client := NewConn(a), NewConn(b)
	_ = server.Close()
	_ = b.Close()
	if _, err := client.Receive(); err == nil {
		t.Error("receive on closed connection should fail")
	}
}

func TestMsgTypeAndModeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgSetup, MsgSetupAck, MsgTupleBatch, MsgResultBatch, MsgEnd, MsgError, MsgRegisterUDF, MsgFinalResult, MsgInvalid} {
		if mt.String() == "" {
			t.Errorf("MsgType(%d) has empty string", mt)
		}
	}
	if ModeNaive.String() != "naive" || ModeSemiJoin.String() != "semijoin" || ModeClientJoin.String() != "clientjoin" {
		t.Error("Mode strings wrong")
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode string wrong")
	}
	if !strings.Contains(MsgTupleBatch.String(), "TUPLE") {
		t.Error("MsgTupleBatch string wrong")
	}
}

func TestSetupRoundTrip(t *testing.T) {
	s := &SetupRequest{
		SessionID:   7,
		Mode:        ModeClientJoin,
		InputSchema: shippedSchema(),
		UDFs: []UDFSpec{
			{Name: "ClientAnalysis", ArgOrdinals: []int{0}},
			{Name: "Volatility", ArgOrdinals: []int{0, 1}},
		},
		PushablePredicate: []byte{1, 2, 3, 4},
		ProjectOrdinals:   []int{1, 2},
		FinalDelivery:     true,
	}
	data, err := EncodeSetup(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSetup(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("setup round trip:\n got %+v\nwant %+v", got, s)
	}

	// Minimal setup (no UDFs, no predicate, no projection).
	minimal := &SetupRequest{SessionID: 1, Mode: ModeSemiJoin, InputSchema: shippedSchema()}
	data, err = EncodeSetup(minimal)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeSetup(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeSemiJoin || len(got.UDFs) != 0 || got.PushablePredicate != nil || got.ProjectOrdinals != nil || got.FinalDelivery {
		t.Errorf("minimal setup round trip = %+v", got)
	}

	if _, err := EncodeSetup(&SetupRequest{}); err == nil {
		t.Error("setup without schema should fail to encode")
	}
	if _, err := DecodeSetup([]byte{1, 2}); err == nil {
		t.Error("truncated setup should fail to decode")
	}
	if _, err := DecodeSetup(append(data, 0xff)); err == nil {
		t.Error("trailing bytes should fail to decode")
	}
}

func TestSetupAckRoundTrip(t *testing.T) {
	for _, a := range []*SetupAck{
		{SessionID: 3, OK: true},
		{SessionID: 9, OK: false, Error: "no such UDF"},
	} {
		got, err := DecodeSetupAck(EncodeSetupAck(a))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Errorf("ack round trip %+v != %+v", got, a)
		}
	}
	if _, err := DecodeSetupAck([]byte{1}); err == nil {
		t.Error("truncated ack should fail")
	}
}

func TestTupleBatchRoundTrip(t *testing.T) {
	b := &TupleBatch{
		SessionID: 11,
		Seq:       4,
		Tuples: []types.Tuple{
			types.NewTuple(types.NewTimeSeries(types.NewSeries(1, 2, 3)), types.NewString("ACME")),
			types.NewTuple(types.NewTimeSeries(types.NewSeries(9)), types.Null(types.KindString)),
		},
	}
	data, err := EncodeTupleBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTupleBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != 11 || got.Seq != 4 || len(got.Tuples) != 2 {
		t.Errorf("batch header round trip = %+v", got)
	}
	if got.Tuples[0].Len() != 2 || !got.Tuples[0][1].Equal(types.NewString("ACME")) {
		t.Errorf("batch tuple 0 = %v", got.Tuples[0])
	}
	if !got.Tuples[1][1].IsNull() {
		t.Errorf("batch tuple 1 = %v", got.Tuples[1])
	}
	// Empty batch is legal (used as a keep-alive).
	empty := &TupleBatch{SessionID: 1, Seq: 0}
	data, _ = EncodeTupleBatch(empty)
	got, err = DecodeTupleBatch(data)
	if err != nil || len(got.Tuples) != 0 {
		t.Errorf("empty batch round trip = %+v, %v", got, err)
	}
	if _, err := DecodeTupleBatch([]byte{1, 2, 3}); err == nil {
		t.Error("truncated batch should fail")
	}
	if _, err := DecodeTupleBatch(append(data, 0x01)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestErrorAndEndRoundTrip(t *testing.T) {
	e := &ErrorMsg{SessionID: 5, Message: "client UDF panicked"}
	got, err := DecodeError(EncodeError(e))
	if err != nil || !reflect.DeepEqual(e, got) {
		t.Errorf("error round trip = %+v, %v", got, err)
	}
	if _, err := DecodeError([]byte{0}); err == nil {
		t.Error("truncated error should fail")
	}
	end := &End{SessionID: 2, Rows: 42}
	gotEnd, err := DecodeEnd(EncodeEnd(end))
	if err != nil || !reflect.DeepEqual(end, gotEnd) {
		t.Errorf("end round trip = %+v, %v", gotEnd, err)
	}
	if _, err := DecodeEnd([]byte{0, 1}); err == nil {
		t.Error("truncated end should fail")
	}
}

func TestRegisterUDFRoundTrip(t *testing.T) {
	r := &RegisterUDF{
		Name:        "ClientAnalysis",
		ArgKinds:    []types.Kind{types.KindTimeSeries},
		ResultKind:  types.KindInt,
		ResultSize:  100,
		Selectivity: 0.4,
		PerCallCost: 2.5,
	}
	got, err := DecodeRegisterUDF(EncodeRegisterUDF(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("register round trip = %+v", got)
	}
	noArgs := &RegisterUDF{Name: "f", ResultKind: types.KindBool}
	got, err = DecodeRegisterUDF(EncodeRegisterUDF(noArgs))
	if err != nil || got.Name != "f" || len(got.ArgKinds) != 0 {
		t.Errorf("no-arg register round trip = %+v, %v", got, err)
	}
	for _, bad := range [][]byte{nil, {1, 'f'}, {1, 'f', 1}} {
		if _, err := DecodeRegisterUDF(bad); err == nil {
			t.Errorf("DecodeRegisterUDF(%v) should fail", bad)
		}
	}
}

// TestQuickTupleBatchRoundTrip property: arbitrary batches survive the wire
// encoding with tuple count, session and sequence numbers intact.
func TestQuickTupleBatchRoundTrip(t *testing.T) {
	f := func(seed int64, session, seq uint64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		b := &TupleBatch{SessionID: session, Seq: seq}
		for i := 0; i < n; i++ {
			b.Tuples = append(b.Tuples, types.NewTuple(
				types.NewTimeSeries(types.NewSeries(r.Float64(), r.Float64())),
				types.NewString(strings.Repeat("x", r.Intn(32))),
			))
		}
		data, err := EncodeTupleBatch(b)
		if err != nil {
			return false
		}
		got, err := DecodeTupleBatch(data)
		if err != nil {
			return false
		}
		return got.SessionID == session && got.Seq == seq && len(got.Tuples) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
